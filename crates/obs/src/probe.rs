//! The probe sink interface and the shared, clonable [`ProbeHandle`].

use std::sync::{Arc, Mutex};

use gps_types::Cycle;

use crate::recorder::{Recorder, Telemetry};

/// A row of the timeline: the whole system, or one GPU.
///
/// Tracks map to Chrome trace-event *processes*, so every GPU gets its own
/// swimlane in `chrome://tracing`/Perfetto and per-GPU series with the same
/// name (`"dram_read_bytes"` on every GPU) stay distinguishable without
/// allocating per-GPU metric names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track(u32);

impl Track {
    /// The system-wide track (phase spans, barriers).
    pub const SYSTEM: Track = Track(0);

    /// The track of GPU `index`.
    pub const fn gpu(index: usize) -> Track {
        Track(1 + index as u32)
    }

    /// Stable numeric id (Chrome trace `pid`).
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Human-readable row label (`system`, `gpu0`, `gpu1`, ...).
    pub fn label(self) -> String {
        if self.0 == 0 {
            "system".to_owned()
        } else {
            format!("gpu{}", self.0 - 1)
        }
    }
}

/// A telemetry sink. Every method has a no-op default, so a sink only
/// implements the signals it cares about; [`NoopProbe`] implements none and
/// compiles down to nothing.
///
/// Determinism contract: probes *observe* the simulation and must never
/// feed back into it — the instrumented components call sinks with copies
/// of already-computed values and ignore any sink state. Enabling a probe
/// therefore cannot perturb a `SimReport`.
pub trait Probe: Send {
    /// Adds `delta` to the cycle-bucketed counter series `name` on `track`
    /// at time `now` (monotone accumulations: bytes moved, misses taken).
    fn counter(&mut self, track: Track, name: &'static str, now: Cycle, delta: f64) {
        let _ = (track, name, now, delta);
    }

    /// Samples the instantaneous level `value` of gauge series `name`
    /// (occupancies, queue depths); the last sample per bucket wins.
    fn gauge(&mut self, track: Track, name: &'static str, now: Cycle, value: f64) {
        let _ = (track, name, now, value);
    }

    /// Records a completed span `[start, end)` (kernels, phases, drains).
    fn span(&mut self, track: Track, name: &str, cat: &'static str, start: Cycle, end: Cycle) {
        let _ = (track, name, cat, start, end);
    }

    /// Records a point event (barriers, collapses).
    fn instant(&mut self, track: Track, name: &'static str, now: Cycle) {
        let _ = (track, name, now);
    }
}

/// The do-nothing sink: every hook inherits the empty default body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// A clonable handle that instrumented components hold.
///
/// Disabled (the default) it is `None` inside: every emission is a single
/// predictable branch and no recorder, lock or allocation exists anywhere —
/// the price of having telemetry compiled in is one null check per probe
/// site. Enabled, all clones share one [`Recorder`] behind a mutex (a run
/// is single-threaded; the lock is uncontended and exists only to keep the
/// handle `Send` for the harness worker pool).
#[derive(Debug, Clone, Default)]
pub struct ProbeHandle(Option<Arc<Mutex<Recorder>>>);

impl ProbeHandle {
    /// The disabled handle: all emissions are no-ops.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A recording handle with the given bucket width and span capacity.
    pub fn recording(bucket_cycles: u64, span_capacity: usize) -> Self {
        Self(Some(Arc::new(Mutex::new(Recorder::new(
            bucket_cycles,
            span_capacity,
        )))))
    }

    /// Whether emissions are recorded. Use to skip *preparing* expensive
    /// arguments (formatting names, diffing stats) — the emission methods
    /// already check internally.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards to [`Probe::counter`] when enabled.
    #[inline]
    pub fn counter(&self, track: Track, name: &'static str, now: Cycle, delta: f64) {
        if let Some(r) = &self.0 {
            r.lock()
                // gps-lint: allow(no_expect) -- poison implies a prior panic; probes never panic themselves
                .expect("recorder lock")
                .counter(track, name, now, delta);
        }
    }

    /// Forwards to [`Probe::gauge`] when enabled.
    #[inline]
    pub fn gauge(&self, track: Track, name: &'static str, now: Cycle, value: f64) {
        if let Some(r) = &self.0 {
            r.lock()
                // gps-lint: allow(no_expect) -- poison implies a prior panic; probes never panic themselves
                .expect("recorder lock")
                .gauge(track, name, now, value);
        }
    }

    /// Forwards to [`Probe::span`] when enabled.
    #[inline]
    pub fn span(&self, track: Track, name: &str, cat: &'static str, start: Cycle, end: Cycle) {
        if let Some(r) = &self.0 {
            r.lock()
                // gps-lint: allow(no_expect) -- poison implies a prior panic; probes never panic themselves
                .expect("recorder lock")
                .span(track, name, cat, start, end);
        }
    }

    /// Forwards to [`Probe::instant`] when enabled.
    #[inline]
    pub fn instant(&self, track: Track, name: &'static str, now: Cycle) {
        if let Some(r) = &self.0 {
            // gps-lint: allow(no_expect) -- poison implies a prior panic; probes never panic themselves
            r.lock().expect("recorder lock").instant(track, name, now);
        }
    }

    /// Extracts everything recorded so far, resetting the shared recorder.
    /// Returns `None` for a disabled handle.
    pub fn finish(&self) -> Option<Telemetry> {
        self.0.as_ref().map(|r| {
            // gps-lint: allow(no_expect) -- poison implies a prior panic; probes never panic themselves
            let mut guard = r.lock().expect("recorder lock");
            guard.take().finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_are_stable_and_labelled() {
        assert_eq!(Track::SYSTEM.id(), 0);
        assert_eq!(Track::gpu(0).id(), 1);
        assert_eq!(Track::gpu(3).label(), "gpu3");
        assert_eq!(Track::SYSTEM.label(), "system");
        assert!(Track::gpu(0) > Track::SYSTEM);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = ProbeHandle::disabled();
        assert!(!h.is_enabled());
        h.counter(Track::SYSTEM, "x", Cycle::ZERO, 1.0);
        h.span(Track::SYSTEM, "s", "cat", Cycle::ZERO, Cycle::new(5));
        assert!(h.finish().is_none());
    }

    #[test]
    fn noop_probe_accepts_everything() {
        let mut p = NoopProbe;
        p.counter(Track::SYSTEM, "x", Cycle::ZERO, 1.0);
        p.gauge(Track::SYSTEM, "x", Cycle::ZERO, 1.0);
        p.span(Track::SYSTEM, "s", "c", Cycle::ZERO, Cycle::ZERO);
        p.instant(Track::SYSTEM, "i", Cycle::ZERO);
    }

    #[test]
    fn clones_share_one_recorder() {
        let h = ProbeHandle::recording(100, 16);
        let h2 = h.clone();
        h.counter(Track::SYSTEM, "bytes", Cycle::new(50), 1.0);
        h2.counter(Track::SYSTEM, "bytes", Cycle::new(150), 2.0);
        let t = h.finish().unwrap();
        assert_eq!(t.counters.len(), 1);
        assert_eq!(t.counters[0].series.total(), 3.0);
        // finish() resets: a second finish sees an empty recorder.
        let t2 = h2.finish().unwrap();
        assert!(t2.counters.is_empty());
    }
}
