//! A zero-dependency, power-of-two-bucketed integer latency histogram.

/// Buckets: value `0` in bucket 0, value `v > 0` in bucket
/// `64 - v.leading_zeros()`, i.e. bucket `k >= 1` covers `[2^(k-1), 2^k)`.
const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples (latencies in
/// cycles, queue depths, ...).
///
/// All state is integral — per-bucket counts plus exact `count`, `sum`,
/// `min` and `max` — so recording and [`merge`](Histogram::merge) are
/// exact and deterministic: merge is associative and commutative, and two
/// histograms fed the same multiset of samples compare equal regardless
/// of insertion order. Quantiles ([`percentile`](Histogram::percentile))
/// use the same nearest-rank rule as `ServeReport`'s exact percentiles
/// and return the selected bucket's inclusive upper bound, so the
/// reported quantile `q` brackets the exact value `e` as `e <= q < 2e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The inclusive upper bound of bucket `bucket` (`0` for bucket 0,
    /// `2^bucket - 1` otherwise, saturating at `u64::MAX`).
    pub fn bucket_upper_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counts.get_mut(Self::bucket_of(value)) {
            *c += n;
        }
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Exact: merging is associative and
    /// commutative, and `a.merge(&b)` equals recording both sample sets
    /// into one histogram in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Exact largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Exact integer mean (sum / count; zero when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`): the inclusive upper
    /// bound of the bucket holding the sample of rank
    /// `ceil(p * count / 100)` (clamped to `[1, count]`), zero when empty.
    ///
    /// The rank rule matches `ServeReport::latency_percentile`, so for
    /// identical samples the returned bound always lands in the same
    /// power-of-two bucket as the exact percentile.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u64::from(p) * self.count)
            .div_ceil(100)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(bucket);
            }
        }
        // Unreachable: bucket counts sum to `count >= rank`.
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Iterates `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_upper_bound(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        for k in 1..63 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(Histogram::bucket_of(lo), k as usize, "2^{}", k - 1);
            assert_eq!(Histogram::bucket_of(hi), k as usize, "2^{k}-1");
            assert_eq!(Histogram::bucket_of(hi + 1), k as usize + 1);
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn exact_aggregates_survive_bucketing() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 100, 100, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 208 + u128::from(u64::MAX));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(Histogram::new().min().is_none());
        assert_eq!(Histogram::new().percentile(50), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let feed = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = feed(&[1, 2, 3]);
        let b = feed(&[1000, 0]);
        let c = feed(&[u64::MAX, 17, 17]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = {
            let mut bc = b.clone();
            bc.merge(&c);
            bc
        };
        a_bc.merge(&a);
        let mut all_at_once = feed(&[1, 2, 3, 1000, 0, u64::MAX, 17, 17]);
        assert_eq!(ab_c, a_bc, "associative + commutative");
        assert_eq!(ab_c, all_at_once, "merge == recording the union");
        all_at_once.merge(&Histogram::new());
        assert_eq!(ab_c, all_at_once, "empty is the identity");
    }

    #[test]
    fn percentile_brackets_the_exact_value() {
        let samples: Vec<u64> = (1..=200).map(|i| i * 37).collect();
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &v in &samples {
            h.record(v);
        }
        for p in [0u32, 1, 25, 50, 95, 99, 100] {
            let n = sorted.len() as u64;
            let rank = (u64::from(p) * n).div_ceil(100).clamp(1, n);
            let exact = sorted[(rank - 1) as usize];
            let q = h.percentile(p);
            assert!(exact <= q, "p{p}: exact {exact} <= hist {q}");
            assert_eq!(
                Histogram::bucket_of(exact),
                Histogram::bucket_of(q),
                "p{p}: same power-of-two bucket"
            );
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(12, 5);
        a.record_n(9, 0);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(12);
        }
        assert_eq!(a, b);
        assert_eq!(a.nonzero_buckets().collect::<Vec<_>>(), vec![(15, 5)]);
    }
}
