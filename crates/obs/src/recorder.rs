//! The in-memory recorder and the finished [`Telemetry`] bundle.

use std::collections::BTreeMap;

use gps_types::Cycle;

use crate::hist::Histogram;
use crate::probe::{Probe, Track};
use crate::ring::{EventRing, SpanEvent};
use crate::series::TimeSeries;

/// Default counter/gauge bucket width: 4096 cycles keeps even paper-scale
/// runs (tens of millions of cycles) to a few thousand buckets per series.
pub const DEFAULT_BUCKET_CYCLES: u64 = 4096;

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Whether a series accumulated deltas or sampled levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-bucket sums of deltas ([`Probe::counter`]).
    Counter,
    /// Last level sampled per bucket ([`Probe::gauge`]).
    Gauge,
}

/// One named, track-scoped series of a finished recording.
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// Timeline row.
    pub track: Track,
    /// Metric name.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: SeriesKind,
    /// The bucketed samples.
    pub series: TimeSeries,
}

/// One named, track-scoped latency histogram of a finished recording.
#[derive(Debug, Clone)]
pub struct HistData {
    /// Timeline row.
    pub track: Track,
    /// Metric name.
    pub name: &'static str,
    /// The power-of-two-bucketed samples.
    pub hist: Histogram,
}

/// Everything one recording captured, ready for export.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Bucket width of every series.
    pub bucket_cycles: u64,
    /// Counter series, ordered by `(track, name)`.
    pub counters: Vec<SeriesData>,
    /// Gauge series, ordered by `(track, name)`.
    pub gauges: Vec<SeriesData>,
    /// Latency histograms, ordered by `(track, name)`.
    pub hists: Vec<HistData>,
    /// Spans and instants, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Spans evicted from the bounded ring (0 = complete).
    pub dropped_spans: u64,
}

impl Telemetry {
    /// All series, counters then gauges.
    pub fn all_series(&self) -> impl Iterator<Item = &SeriesData> {
        self.counters.iter().chain(self.gauges.iter())
    }

    /// The counter series `name` on `track`, if recorded.
    pub fn counter(&self, track: Track, name: &str) -> Option<&TimeSeries> {
        self.counters
            .iter()
            .find(|s| s.track == track && s.name == name)
            .map(|s| &s.series)
    }

    /// The gauge series `name` on `track`, if recorded.
    pub fn gauge(&self, track: Track, name: &str) -> Option<&TimeSeries> {
        self.gauges
            .iter()
            .find(|s| s.track == track && s.name == name)
            .map(|s| &s.series)
    }

    /// The latency histogram `name` on `track`, if recorded.
    pub fn hist(&self, track: Track, name: &str) -> Option<&Histogram> {
        self.hists
            .iter()
            .find(|h| h.track == track && h.name == name)
            .map(|h| &h.hist)
    }

    /// Spans of category `cat`, in recorded order.
    pub fn spans_of<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a SpanEvent> + 'a {
        self.spans.iter().filter(move |s| s.cat == cat)
    }
}

/// The standard [`Probe`] implementation: bucketed series per
/// `(track, name)` plus a bounded span ring.
///
/// Series keys are `BTreeMap`-ordered, so a finished [`Telemetry`] is
/// deterministic for a deterministic simulation regardless of insertion
/// order.
#[derive(Debug)]
pub struct Recorder {
    bucket_cycles: u64,
    span_capacity: usize,
    counters: BTreeMap<(Track, &'static str), TimeSeries>,
    gauges: BTreeMap<(Track, &'static str), TimeSeries>,
    hists: BTreeMap<(Track, &'static str), Histogram>,
    ring: EventRing,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new(bucket_cycles: u64, span_capacity: usize) -> Self {
        Self {
            bucket_cycles,
            span_capacity,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            ring: EventRing::new(span_capacity),
        }
    }

    /// Replaces `self` with an empty recorder of the same shape and
    /// returns the previous contents.
    pub fn take(&mut self) -> Recorder {
        std::mem::replace(self, Recorder::new(self.bucket_cycles, self.span_capacity))
    }

    /// Finishes the recording into an exportable [`Telemetry`].
    pub fn finish(self) -> Telemetry {
        let pack = |map: BTreeMap<(Track, &'static str), TimeSeries>, kind| {
            map.into_iter()
                .map(|((track, name), series)| SeriesData {
                    track,
                    name,
                    kind,
                    series,
                })
                .collect()
        };
        Telemetry {
            bucket_cycles: self.bucket_cycles,
            counters: pack(self.counters, SeriesKind::Counter),
            gauges: pack(self.gauges, SeriesKind::Gauge),
            hists: self
                .hists
                .into_iter()
                .map(|((track, name), hist)| HistData { track, name, hist })
                .collect(),
            dropped_spans: self.ring.dropped(),
            spans: self.ring.into_events(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(DEFAULT_BUCKET_CYCLES, DEFAULT_SPAN_CAPACITY)
    }
}

impl Probe for Recorder {
    fn counter(&mut self, track: Track, name: &'static str, now: Cycle, delta: f64) {
        let width = self.bucket_cycles;
        self.counters
            .entry((track, name))
            .or_insert_with(|| TimeSeries::new(width))
            .add(now, delta);
    }

    fn gauge(&mut self, track: Track, name: &'static str, now: Cycle, value: f64) {
        let width = self.bucket_cycles;
        self.gauges
            .entry((track, name))
            .or_insert_with(|| TimeSeries::new(width))
            .sample(now, value);
    }

    fn span(&mut self, track: Track, name: &str, cat: &'static str, start: Cycle, end: Cycle) {
        self.ring.push(SpanEvent {
            track,
            name: name.to_owned(),
            cat,
            start,
            end,
        });
    }

    fn instant(&mut self, track: Track, name: &'static str, now: Cycle) {
        self.ring.push(SpanEvent {
            track,
            name: name.to_owned(),
            cat: "mark",
            start: now,
            end: now,
        });
    }

    fn latency(&mut self, track: Track, name: &'static str, _now: Cycle, value: u64) {
        self.hists.entry((track, name)).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_keyed_by_track_and_name() {
        let mut r = Recorder::new(100, 8);
        r.counter(Track::gpu(1), "bytes", Cycle::ZERO, 1.0);
        r.counter(Track::gpu(0), "bytes", Cycle::ZERO, 2.0);
        r.counter(Track::gpu(0), "bytes", Cycle::new(50), 3.0);
        r.gauge(Track::gpu(0), "occ", Cycle::ZERO, 4.0);
        let t = r.finish();
        assert_eq!(t.counters.len(), 2);
        // BTreeMap order: gpu0 before gpu1.
        assert_eq!(t.counters[0].track, Track::gpu(0));
        assert_eq!(t.counters[0].series.total(), 5.0);
        assert_eq!(t.counter(Track::gpu(1), "bytes").unwrap().total(), 1.0);
        assert_eq!(t.gauge(Track::gpu(0), "occ").unwrap().bucket(0), 4.0);
        assert!(t.counter(Track::gpu(2), "bytes").is_none());
    }

    #[test]
    fn spans_and_instants_share_the_ring() {
        let mut r = Recorder::new(100, 8);
        r.span(
            Track::SYSTEM,
            "phase 0",
            "phase",
            Cycle::ZERO,
            Cycle::new(10),
        );
        r.instant(Track::SYSTEM, "barrier", Cycle::new(10));
        let t = r.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans_of("phase").count(), 1);
        assert_eq!(t.spans_of("mark").next().unwrap().duration(), 0);
        assert_eq!(t.dropped_spans, 0);
    }

    #[test]
    fn latency_samples_collect_into_histograms() {
        let mut r = Recorder::new(100, 8);
        r.latency(Track::tenant(0), "sojourn", Cycle::new(10), 100);
        r.latency(Track::tenant(0), "sojourn", Cycle::new(20), 300);
        r.latency(Track::tenant(1), "sojourn", Cycle::new(30), 7);
        let t = r.finish();
        assert_eq!(t.hists.len(), 2);
        let h = t.hist(Track::tenant(0), "sojourn").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(300));
        assert_eq!(t.hist(Track::tenant(1), "sojourn").unwrap().count(), 1);
        assert!(t.hist(Track::tenant(2), "sojourn").is_none());
    }

    #[test]
    fn span_ring_overflow_is_counted_not_silent() {
        let mut r = Recorder::new(100, 4);
        for n in 0..10u64 {
            r.span(
                Track::SYSTEM,
                &format!("phase {n}"),
                "phase",
                Cycle::new(n * 10),
                Cycle::new(n * 10 + 10),
            );
        }
        let t = r.finish();
        assert_eq!(t.spans.len(), 4, "ring keeps the newest spans");
        assert_eq!(t.dropped_spans, 6, "every eviction is counted");
    }

    #[test]
    fn take_resets_in_place() {
        let mut r = Recorder::new(100, 8);
        r.counter(Track::SYSTEM, "x", Cycle::ZERO, 1.0);
        let old = r.take();
        assert_eq!(old.finish().counters.len(), 1);
        assert!(r.take().finish().counters.is_empty());
    }
}
