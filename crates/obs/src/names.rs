//! The registry of every counter, gauge and instant series name.
//!
//! Probe sites must name their series through these constants (or, at
//! minimum, with a string that matches one of them): `gps-lint`'s probe
//! coverage rules cross-check this registry against the instrumented
//! crates in both directions. A constant that no probe site emits is dead
//! telemetry (`probe_dead_name`); an emission whose name is not registered
//! here is invisible to readers scanning the catalog
//! (`probe_unregistered_name`). Span *names* are free-form (kernels and
//! phases are labelled dynamically) and are not registered.
//!
//! Keep the constant's value equal to the snake_case series name users see
//! in `gps-run timeline` output and Chrome traces.

/// Instant marked at every inter-phase barrier (system track).
pub const BARRIER: &str = "barrier";

/// Last-level TLB lookups that hit (per-GPU counter).
pub const TLB_HIT: &str = "tlb_hit";

/// Last-level TLB lookups that missed and walked (per-GPU counter).
pub const TLB_MISS: &str = "tlb_miss";

/// Bytes read from a GPU's local DRAM (per-GPU counter).
pub const DRAM_READ_BYTES: &str = "dram_read_bytes";

/// Bytes written to a GPU's local DRAM (per-GPU counter).
pub const DRAM_WRITE_BYTES: &str = "dram_write_bytes";

/// Bytes leaving a GPU over the inter-GPU fabric (per-GPU counter).
pub const LINK_EGRESS_BYTES: &str = "link_egress_bytes";

/// Bytes arriving at a GPU over the inter-GPU fabric (per-GPU counter).
pub const LINK_INGRESS_BYTES: &str = "link_ingress_bytes";

/// Stores presented to a GPU's remote-write queue (per-GPU counter).
pub const RWQ_STORES: &str = "rwq_stores";

/// Stores coalesced into an existing queue line (per-GPU counter).
pub const RWQ_COALESCED: &str = "rwq_coalesced";

/// Remote-write-queue occupancy after an enqueue (per-GPU gauge).
pub const RWQ_OCCUPANCY: &str = "rwq_occupancy";

/// Replicas swapped out at subscription time under memory pressure
/// (per-GPU counter).
pub const EVICTIONS: &str = "evictions";

/// Previously evicted pages faulted back in (per-GPU counter).
pub const REFAULTS: &str = "refaults";

/// GPS ATU lookups that missed the local TLB (per-GPU counter).
pub const ATU_TLB_MISS: &str = "atu_tlb_miss";

/// Instant marked when subscription tracking stops (system track).
pub const TRACKING_STOP: &str = "tracking_stop";

/// Jobs in service across all tenant slots after a serve-loop event
/// (system-track gauge).
pub const SERVE_ACTIVE_JOBS: &str = "serve_active_jobs";

/// Jobs waiting for a free tenant slot after a serve-loop event
/// (system-track gauge).
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";

/// Jobs completed on a tenant slot (per-slot counter, on the slot's
/// GPU-track index).
pub const SERVE_COMPLETIONS: &str = "serve_completions";

/// Jobs arriving at the serve loop (system-track counter).
pub const SERVE_ARRIVALS: &str = "serve_arrivals";

/// Tenant slots idle after a serve-loop event (system-track gauge).
pub const SERVE_FREE_SLOTS: &str = "serve_free_slots";

/// Jobs in flight — queued or in service — for one tenant after a
/// serve-loop event (per-tenant gauge).
pub const SERVE_TENANT_IN_FLIGHT: &str = "serve_tenant_in_flight";

/// Per-job sojourn time, arrival to completion, in cycles (per-tenant
/// latency histogram).
pub const SERVE_SOJOURN_CYCLES: &str = "serve_sojourn_cycles";

/// Every registered series name, for exhaustive iteration (exports,
/// documentation, the lint self-test).
pub const ALL: &[&str] = &[
    BARRIER,
    TLB_HIT,
    TLB_MISS,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    LINK_EGRESS_BYTES,
    LINK_INGRESS_BYTES,
    RWQ_STORES,
    RWQ_COALESCED,
    RWQ_OCCUPANCY,
    EVICTIONS,
    REFAULTS,
    ATU_TLB_MISS,
    TRACKING_STOP,
    SERVE_ACTIVE_JOBS,
    SERVE_QUEUE_DEPTH,
    SERVE_COMPLETIONS,
    SERVE_ARRIVALS,
    SERVE_FREE_SLOTS,
    SERVE_TENANT_IN_FLIGHT,
    SERVE_SOJOURN_CYCLES,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_snake_case() {
        for (i, a) in ALL.iter().enumerate() {
            assert!(
                a.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{a}: series names are snake_case"
            );
            for b in &ALL[i + 1..] {
                assert_ne!(a, b, "duplicate registered name");
            }
        }
    }
}
