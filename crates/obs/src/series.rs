//! Cycle-bucketed time series.

use gps_types::Cycle;

/// A dense, cycle-bucketed series of `f64` samples.
///
/// Simulated time is divided into fixed-width buckets of `bucket_cycles`;
/// the vector grows on demand to cover the latest sample, so memory is
/// proportional to simulated time / bucket width regardless of event rate.
/// Two accumulation modes share the storage:
///
/// * [`add`](TimeSeries::add) — counters: deltas within a bucket sum.
/// * [`sample`](TimeSeries::sample) — gauges: the last level per bucket
///   wins.
///
/// ```
/// use gps_obs::TimeSeries;
/// use gps_types::Cycle;
///
/// let mut s = TimeSeries::new(100);
/// s.add(Cycle::new(10), 1.0);
/// s.add(Cycle::new(90), 2.0);
/// s.add(Cycle::new(150), 4.0);
/// assert_eq!(s.bucket(0), 3.0);
/// assert_eq!(s.bucket(1), 4.0);
/// assert_eq!(s.total(), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bucket_cycles: u64,
    buckets: Vec<f64>,
    total: f64,
    samples: u64,
}

impl TimeSeries {
    /// Creates an empty series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be positive");
        Self {
            bucket_cycles,
            buckets: Vec::new(),
            total: 0.0,
            samples: 0,
        }
    }

    fn index(&mut self, now: Cycle) -> usize {
        let idx = (now.as_u64() / self.bucket_cycles) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        idx
    }

    /// Adds `delta` to the bucket containing `now` (counter mode).
    pub fn add(&mut self, now: Cycle, delta: f64) {
        let idx = self.index(now);
        // gps-lint: allow(no_slice_index) -- index() just resized buckets to cover idx
        self.buckets[idx] += delta;
        self.total += delta;
        self.samples += 1;
    }

    /// Overwrites the bucket containing `now` with `value` (gauge mode:
    /// last sample per bucket wins).
    pub fn sample(&mut self, now: Cycle, value: f64) {
        let idx = self.index(now);
        // gps-lint: allow(no_slice_index) -- index() just resized buckets to cover idx
        self.buckets[idx] = value;
        self.samples += 1;
    }

    /// Bucket width in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Number of buckets covered (up to the latest sample).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Value of bucket `idx` (zero for never-touched buckets in range).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket(&self, idx: usize) -> f64 {
        // gps-lint: allow(no_slice_index) -- documented panic contract: caller promises idx < len()
        self.buckets[idx]
    }

    /// Sum of all deltas ever added (counter mode; meaningless for gauges).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Emissions recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Iterates `(bucket_start, value)` over non-zero buckets.
    pub fn points(&self) -> impl Iterator<Item = (Cycle, f64)> + '_ {
        let width = self.bucket_cycles;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(move |(i, &v)| (Cycle::new(i as u64 * width), v))
    }

    /// Sum of bucket values whose bucket start lies in `[start, end)` —
    /// the per-phase aggregation used by the text breakdown. Boundary
    /// buckets attribute to the phase containing their start.
    pub fn sum_range(&self, start: Cycle, end: Cycle) -> f64 {
        self.points()
            .filter(|&(t, _)| t >= start && t < end)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_bucket() {
        let mut s = TimeSeries::new(10);
        s.add(Cycle::new(0), 1.0);
        s.add(Cycle::new(9), 1.0);
        s.add(Cycle::new(10), 5.0);
        assert_eq!(s.bucket(0), 2.0);
        assert_eq!(s.bucket(1), 5.0);
        assert_eq!(s.total(), 7.0);
        assert_eq!(s.samples(), 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn gauges_keep_last_sample() {
        let mut s = TimeSeries::new(10);
        s.sample(Cycle::new(3), 7.0);
        s.sample(Cycle::new(8), 2.0);
        assert_eq!(s.bucket(0), 2.0);
    }

    #[test]
    fn sparse_series_grow_on_demand() {
        let mut s = TimeSeries::new(100);
        s.add(Cycle::new(10_000), 1.0);
        assert_eq!(s.len(), 101);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(Cycle::new(10_000), 1.0)]);
    }

    #[test]
    fn range_sum_is_half_open() {
        let mut s = TimeSeries::new(10);
        for t in [0u64, 10, 20, 30] {
            s.add(Cycle::new(t), 1.0);
        }
        assert_eq!(s.sum_range(Cycle::new(10), Cycle::new(30)), 2.0);
        assert_eq!(s.sum_range(Cycle::ZERO, Cycle::new(40)), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_rejected() {
        let _ = TimeSeries::new(0);
    }
}
