//! Pins the analyzer against the committed fixture corpus: every deliberate
//! violation must surface with exactly the right rule id on exactly the
//! right line, waivers must suppress (and stale ones must report), and
//! nothing else may fire.
//!
//! Fixtures are plain `.rs` files under `tests/fixtures/` (never compiled);
//! the test copies them into a throwaway workspace shaped like the real
//! one, so crate scoping and the probe registry path behave as in
//! production.

use std::path::{Path, PathBuf};

use gps_lint::{lint_workspace, Config};

/// `(fixture file, destination inside the fake workspace)`.
const LAYOUT: &[(&str, &str)] = &[
    ("determinism.rs", "crates/sim/src/determinism.rs"),
    ("sites.rs", "crates/sim/src/sites.rs"),
    ("concurrency.rs", "crates/sim/src/concurrency.rs"),
    ("tier.rs", "crates/sim/src/tier.rs"),
    ("bridge.rs", "crates/sim/src/bridge.rs"),
    ("hygiene.rs", "crates/harness/src/hygiene.rs"),
    ("waivers.rs", "crates/harness/src/waivers.rs"),
    ("crosshelp.rs", "crates/harness/src/crosshelp.rs"),
    ("emission.rs", "crates/harness/src/emission.rs"),
    ("names.rs", "crates/obs/src/names.rs"),
];

const CONFIG: &str = r#"
[lint]
probe_registry = "crates/obs/src/names.rs"

[rule.no_hash_collections]
crates = ["sim"]
cross_crate = true
[rule.no_wall_clock]
crates = ["sim"]
cross_crate = true
[rule.float_cycle_arith]
crates = ["sim"]
[rule.float_eq]
crates = ["sim"]
[rule.no_unwrap]
crates = ["harness"]
[rule.no_expect]
crates = ["harness"]
[rule.no_slice_index]
crates = ["harness"]
[rule.probe_dead_name]
crates = ["obs"]
[rule.probe_unregistered_name]
crates = ["*"]
[rule.relaxed_atomic_ordering]
crates = ["sim"]
[rule.shared_mut_in_worker]
crates = ["sim"]
[rule.lane_tier_purity]
crates = ["sim"]
"#;

/// Every finding the corpus must produce, in the analyzer's reporting
/// order: sorted by (file, line, rule).
const EXPECTED: &[(&str, u32, &str)] = &[
    ("crates/harness/src/crosshelp.rs", 5, "no_hash_collections"),
    ("crates/harness/src/crosshelp.rs", 15, "no_hash_collections"),
    ("crates/harness/src/crosshelp.rs", 21, "no_wall_clock"),
    ("crates/harness/src/hygiene.rs", 2, "no_unwrap"),
    ("crates/harness/src/hygiene.rs", 3, "no_expect"),
    ("crates/harness/src/hygiene.rs", 4, "no_slice_index"),
    ("crates/harness/src/waivers.rs", 1, "unused_waiver"),
    ("crates/harness/src/waivers.rs", 6, "bad_waiver"),
    ("crates/harness/src/waivers.rs", 7, "bad_waiver"),
    ("crates/obs/src/names.rs", 2, "probe_dead_name"),
    (
        "crates/sim/src/concurrency.rs",
        6,
        "relaxed_atomic_ordering",
    ),
    ("crates/sim/src/concurrency.rs", 16, "shared_mut_in_worker"),
    ("crates/sim/src/determinism.rs", 1, "no_hash_collections"),
    ("crates/sim/src/determinism.rs", 2, "no_hash_collections"),
    ("crates/sim/src/determinism.rs", 3, "no_wall_clock"),
    ("crates/sim/src/determinism.rs", 4, "no_wall_clock"),
    ("crates/sim/src/determinism.rs", 7, "no_wall_clock"),
    ("crates/sim/src/determinism.rs", 8, "no_wall_clock"),
    ("crates/sim/src/determinism.rs", 9, "no_wall_clock"),
    ("crates/sim/src/determinism.rs", 14, "float_cycle_arith"),
    ("crates/sim/src/determinism.rs", 19, "float_eq"),
    ("crates/sim/src/determinism.rs", 20, "float_eq"),
    ("crates/sim/src/determinism.rs", 21, "float_eq"),
    ("crates/sim/src/sites.rs", 3, "probe_unregistered_name"),
    ("crates/sim/src/sites.rs", 5, "probe_unregistered_name"),
    ("crates/sim/src/tier.rs", 30, "lane_tier_purity"),
];

struct FakeWorkspace {
    root: PathBuf,
}

impl FakeWorkspace {
    fn build(tag: &str) -> Self {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
        let root =
            std::env::temp_dir().join(format!("gps-lint-fixture-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (src, dst) in LAYOUT {
            let to = root.join(dst);
            std::fs::create_dir_all(to.parent().expect("fixture dst has a parent"))
                .expect("create fixture dir");
            std::fs::copy(fixtures.join(src), &to).expect("copy fixture");
        }
        FakeWorkspace { root }
    }
}

impl Drop for FakeWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn corpus_findings_are_exact() {
    let ws = FakeWorkspace::build("exact");
    let cfg = Config::parse(CONFIG).expect("fixture config parses");
    let report = lint_workspace(&ws.root, &cfg).expect("lint runs");

    let got: Vec<(String, u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    let want: Vec<(String, u32, String)> = EXPECTED
        .iter()
        .map(|(f, l, r)| ((*f).to_owned(), *l, (*r).to_owned()))
        .collect();
    assert_eq!(
        got, want,
        "fixture corpus drifted from the analyzer's behaviour"
    );
    assert_eq!(report.files_scanned, LAYOUT.len());
    // Honoured waivers: hygiene.rs standalone no_unwrap + trailing
    // no_slice_index, determinism.rs float_eq, concurrency.rs trailing
    // relaxed_atomic_ordering + standalone shared_mut_in_worker, tier.rs
    // lane_tier_purity, crosshelp.rs cross-crate no_wall_clock.
    assert_eq!(
        report.waived, 7,
        "expected exactly the seven honoured waivers"
    );
}

#[test]
fn corpus_is_dirty_and_json_reports_it() {
    let ws = FakeWorkspace::build("json");
    let cfg = Config::parse(CONFIG).expect("fixture config parses");
    let report = lint_workspace(&ws.root, &cfg).expect("lint runs");

    assert!(!report.clean());
    let json = report.to_json();
    assert!(json.contains("\"version\":1"));
    assert!(json.contains("\"rule\":\"probe_unregistered_name\""));
    assert!(json.contains("\"file\":\"crates/sim/src/sites.rs\""));
    // Text output carries file:line coordinates for every finding.
    let text = report.to_text();
    for (file, line, rule) in EXPECTED {
        assert!(
            text.contains(&format!("{file}:{line}: [{rule}]")),
            "text report is missing {file}:{line} [{rule}]"
        );
    }
}

#[test]
fn scoping_silences_out_of_scope_crates() {
    let ws = FakeWorkspace::build("scope");
    // Same corpus, but every rule scoped to a crate that doesn't exist:
    // nothing may fire except the waiver meta-rules, which are never
    // scoped (a stale or malformed waiver is wrong wherever it lives).
    let cfg = Config::parse(
        r#"
[lint]
[rule.no_unwrap]
crates = ["nonexistent"]
"#,
    )
    .expect("config parses");
    let report = lint_workspace(&ws.root, &cfg).expect("lint runs");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules
            .iter()
            .all(|r| *r == "bad_waiver" || *r == "unused_waiver"),
        "out-of-scope rules fired: {rules:?}"
    );
}
