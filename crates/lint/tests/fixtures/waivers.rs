// gps-lint: allow(no_unwrap) -- fixture: suppresses nothing on the next line
pub fn clean() -> u32 {
    7
}

// gps-lint: allow(bogus_rule) -- fixture: unknown rule id
// gps-lint: allow(no_expect) fixture: missing the separator
pub fn also_clean() -> u32 {
    8
}
