fn r#match(r#type: u64) -> u64 { r#type }
fn nest() -> Vec<Vec<u64>> { Vec::new() }
fn pick(f: for<'a> fn(&'a [u64]) -> u64) -> u64 { f(&[1]) }
probe! { counter(track, "tlb_hit", 1.5); }
const GREETING: &str = "first\
second";
const AFTER: char = 'x';
