pub struct Fabric {
    credits: u64,
}

impl Fabric {
    pub fn transfer(&mut self, n: u64) {
        self.credits += n;
    }
}

pub struct GpsLaneRouter {
    queued: u64,
}

impl GpsLaneRouter {
    pub fn forward(&mut self, fabric: &mut Fabric, n: u64) {
        self.queued += 1;
        fabric.transfer(n);
    }
}

pub trait LaneRouter {
    fn route(&mut self, fabric: &mut Fabric);
}

pub struct EagerLane;

impl LaneRouter for EagerLane {
    fn route(&mut self, fabric: &mut Fabric) {
        fabric.transfer(1);
    }
}

pub fn drain_window(fabric: &mut Fabric, router: &mut GpsLaneRouter) {
    router.forward(fabric, 2);
    settle(fabric);
}

fn settle(fabric: &mut Fabric) {
    // gps-lint: allow(lane_tier_purity) -- fixture: standalone waiver on a reachable helper
    fabric.transfer(3);
}
