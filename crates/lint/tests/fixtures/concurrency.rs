use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

pub fn run_lane_pool(claim: &AtomicUsize) -> u32 {
    let _ = claim.fetch_add(1, Ordering::Relaxed);
    let _ = claim.fetch_add(1, Ordering::Relaxed); // gps-lint: allow(relaxed_atomic_ordering) -- fixture: trailing waiver honoured
    thread::scope(|s| {
        s.spawn(|| worker_tally());
        s.spawn(|| worker_scratch());
    });
    0
}

fn worker_tally() -> u32 {
    let tally = Cell::new(0u32);
    tally.set(tally.get() + 1);
    tally.get()
}

fn worker_scratch() -> u32 {
    // gps-lint: allow(shared_mut_in_worker) -- fixture: standalone waiver on a reachable hazard
    let scratch = RefCell::new(3u32);
    *scratch.borrow()
}

pub fn cold_diagnostics() -> u32 {
    let probe = Cell::new(9u32);
    probe.get()
}
