pub fn emit(p: &ProbeHandle, now: Cycle) {
    p.counter(Track::Gpu(0), names::TLB_HIT, now, 1.0);
    p.instant(Track::Gpu(0), "rogue_series", now);
    p.latency(Track::tenant(0), names::SOJOURN, now, 7);
    p.latency(Track::tenant(0), "rogue_latency", now, 7);
}
