pub fn emit(p: &ProbeHandle, now: Cycle) {
    p.counter(Track::Gpu(0), names::TLB_HIT, now, 1.0);
    p.instant(Track::Gpu(0), "rogue_series", now);
}
