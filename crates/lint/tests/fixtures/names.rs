pub const TLB_HIT: &str = "tlb_hit";
pub const DEAD_SERIES: &str = "dead_series";
pub const SOJOURN: &str = "sojourn";
