pub fn risky(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap();
    let b: u32 = xs.get(1).copied().expect("second element");
    let c = xs[2];
    let _all = &xs[..];
    let _v = vec![1, 2, 3];
    a + b + c
}

pub fn covered(xs: &[u32]) -> u32 {
    // gps-lint: allow(no_unwrap) -- fixture: standalone waiver covers the next line
    let a = xs.first().unwrap();
    let b = xs[0]; // gps-lint: allow(no_slice_index) -- fixture: trailing waiver covers its own line
    a + b
}
