use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn wall() -> u128 {
    let t = Instant::now();
    let _ = SystemTime::now();
    let _tid = std::thread::current().id();
    t.elapsed().as_nanos()
}

pub fn cycles(mut cycle_count: f64) -> f64 {
    cycle_count += 0.5;
    cycle_count
}

pub fn float_compares(a: f64, b: f64, n: u64) -> bool {
    let exact = a == 1.5;
    let ne = 0.25 != a;
    let cast = n as f64 == b;
    let int_ok = n == 42;
    let opaque = a == b;
    let waived = a == 2.5; // gps-lint: allow(float_eq) -- fixture: exactness intended
    exact || ne || cast || int_ok || opaque || waived
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_is_fine_in_tests() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
