use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn wall() -> u128 {
    let t = Instant::now();
    let _ = SystemTime::now();
    let _tid = std::thread::current().id();
    t.elapsed().as_nanos()
}

pub fn cycles(mut cycle_count: f64) -> f64 {
    cycle_count += 0.5;
    cycle_count
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_is_fine_in_tests() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
