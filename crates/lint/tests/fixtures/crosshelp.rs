use std::collections::HashMap;
use std::time::Instant;

pub struct SideTable {
    pub map: HashMap<u64, u64>,
}

impl SideTable {
    pub fn side_probe(&self) -> usize {
        self.map.len()
    }
}

pub fn cache_lookup(key: u64) -> usize {
    let mut m = HashMap::new();
    m.insert(key, 1u64);
    m.len()
}

pub fn stamp_epoch() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn stamped_waived() -> u64 {
    // gps-lint: allow(no_wall_clock) -- fixture: cross-crate waiver honoured
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}
