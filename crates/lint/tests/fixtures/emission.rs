pub enum Emission {
    Instant,
    Deferred,
}

pub fn classify_emission() -> Emission {
    Emission::Instant
}
