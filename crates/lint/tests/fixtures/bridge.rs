pub fn publish_metrics(table: &SideTable) -> usize {
    let hits = cache_lookup(7);
    let _epoch = stamp_epoch();
    let _late = stamped_waived();
    let _kind = classify_emission();
    hits + table.side_probe()
}
