//! Pins the lexer's exact token stream on the constructs that defeat
//! naive tokenizers: raw identifiers, nested generics, higher-ranked
//! closure lifetimes, macro bodies, and backslash-newline string
//! continuations (which must still advance the line counter — every rule
//! coordinate downstream depends on it).

use std::path::Path;

use gps_lint::lexer::{lex, Tok};

/// Shorthand constructors so the expected streams below stay readable.
fn id(s: &str) -> Tok {
    Tok::Ident(s.to_owned())
}
fn p(c: char) -> Tok {
    Tok::Punct(c)
}

fn lex_fixture() -> Vec<(u32, Tok)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lexer_edges.rs");
    let text = std::fs::read_to_string(path).expect("read lexer_edges fixture");
    lex(&text)
        .tokens
        .into_iter()
        .map(|t| (t.line, t.tok))
        .collect()
}

fn on_line(line: u32) -> Vec<Tok> {
    lex_fixture()
        .into_iter()
        .filter(|(l, _)| *l == line)
        .map(|(_, t)| t)
        .collect()
}

#[test]
fn raw_identifiers_lex_as_single_idents() {
    // `r#match`/`r#type` must stay one identifier each (keeping the
    // prefix), not an `r` ident followed by stray punctuation.
    assert_eq!(
        on_line(1),
        vec![
            id("fn"),
            id("r#match"),
            p('('),
            id("r#type"),
            p(':'),
            id("u64"),
            p(')'),
            p('-'),
            p('>'),
            id("u64"),
            p('{'),
            id("r#type"),
            p('}'),
        ]
    );
}

#[test]
fn nested_generics_emit_every_angle_bracket() {
    // `Vec<Vec<u64>>` closes with two separate `>` tokens — the rule
    // passes that balance angles depend on never seeing a fused `>>`.
    assert_eq!(
        on_line(2),
        vec![
            id("fn"),
            id("nest"),
            p('('),
            p(')'),
            p('-'),
            p('>'),
            id("Vec"),
            p('<'),
            id("Vec"),
            p('<'),
            id("u64"),
            p('>'),
            p('>'),
            p('{'),
            id("Vec"),
            p(':'),
            p(':'),
            id("new"),
            p('('),
            p(')'),
            p('}'),
        ]
    );
}

#[test]
fn closure_lifetime_params_are_skipped_not_char_literals() {
    // `for<'a> fn(&'a [u64])`: both `'a` occurrences vanish (lifetimes
    // produce no token) instead of opening a char literal that would
    // swallow the rest of the line.
    assert_eq!(
        on_line(3),
        vec![
            id("fn"),
            id("pick"),
            p('('),
            id("f"),
            p(':'),
            id("for"),
            p('<'),
            p('>'),
            id("fn"),
            p('('),
            p('&'),
            p('['),
            id("u64"),
            p(']'),
            p(')'),
            p('-'),
            p('>'),
            id("u64"),
            p(')'),
            p('-'),
            p('>'),
            id("u64"),
            p('{'),
            id("f"),
            p('('),
            p('&'),
            p('['),
            Tok::Num { float: false },
            p(']'),
            p(')'),
            p('}'),
        ]
    );
}

#[test]
fn macro_bodies_lex_like_ordinary_tokens() {
    // Rule passes look inside macro invocations, so the body must arrive
    // as a normal stream: ident, `!`, braces, literals with exact kinds.
    assert_eq!(
        on_line(4),
        vec![
            id("probe"),
            p('!'),
            p('{'),
            id("counter"),
            p('('),
            id("track"),
            p(','),
            Tok::Str("tlb_hit".to_owned()),
            p(','),
            Tok::Num { float: true },
            p(')'),
            p(';'),
            p('}'),
        ]
    );
}

#[test]
fn string_continuation_still_counts_its_line() {
    // The `"first\` + newline + `second"` literal spans lines 5-6; the
    // token anchors at line 5 with the escape left verbatim, and the
    // terminating `;` must land on line 6 — a lexer that forgets to
    // count the continuation newline shifts every later finding.
    assert_eq!(
        on_line(5),
        vec![
            id("const"),
            id("GREETING"),
            p(':'),
            p('&'),
            id("str"),
            p('='),
            Tok::Str("first\\\nsecond".to_owned()),
        ]
    );
    assert_eq!(on_line(6), vec![p(';')]);
    // And line 7 (after the continuation) still sees the char literal as
    // an empty Str token at the right coordinate.
    assert_eq!(
        on_line(7),
        vec![
            id("const"),
            id("AFTER"),
            p(':'),
            id("char"),
            p('='),
            Tok::Str(String::new()),
            p(';'),
        ]
    );
}
