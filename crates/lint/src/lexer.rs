//! A small, rule-oriented Rust lexer.
//!
//! This is not a full Rust tokenizer: it produces exactly the token stream
//! the rule passes need — identifiers, string/char/number literals,
//! single-character punctuation — with line numbers, while correctly
//! skipping the constructs that defeat naive `grep`-style analysis
//! (strings containing code, nested block comments, raw strings, char
//! literals vs lifetimes). Comments are captured separately so waiver
//! parsing can see them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal content (escapes left verbatim): `"…"`, `r"…"`,
    /// `r#"…"#`, `b"…"`.
    Str(String),
    /// Numeric literal; `float` records whether it is a floating literal
    /// (decimal point, exponent, or `f32`/`f64` suffix).
    Num {
        /// Floating-point literal?
        float: bool,
    },
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus its position and test-region flag.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// Inside a `#[test]` / `#[cfg(test)]` region (filled by
    /// [`mark_test_regions`], false straight out of the lexer).
    pub in_test: bool,
}

/// One `//` comment (block comments are skipped: waivers must be
/// line comments so they have an unambiguous target line).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether any code token precedes the comment on its line.
    pub trailing: bool,
    /// Whether this is a doc comment (`///` or `//!`) — never a waiver.
    pub doc: bool,
}

/// A lexed file: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Line comments, in order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source`. Malformed input (unterminated strings/comments) is
/// tolerated: the remainder of the file becomes the pending token and
/// lexing stops, which is the right degradation for an analyzer that must
/// never panic on user code.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_token = false;

    macro_rules! push_tok {
        ($t:expr, $l:expr) => {
            out.tokens.push(Token {
                tok: $t,
                line: $l,
                in_test: false,
            });
            line_had_token = true;
        };
    }

    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            line += 1;
            line_had_token = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
            let start = i + 2;
            let mut end = start;
            while end < chars.len() && chars.get(end) != Some(&'\n') {
                end += 1;
            }
            out.comments.push(Comment {
                // gps-lint: allow(no_slice_index) -- start <= end <= chars.len() by the scan loop
                text: chars[start..end].iter().collect(),
                line,
                trailing: line_had_token,
                doc,
            });
            i = end;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Nested block comment; newlines inside still advance `line`.
            let mut depth = 1usize;
            i += 2;
            while depth > 0 {
                match (chars.get(i), chars.get(i + 1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        i += 2;
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        i += 2;
                    }
                    (Some('\n'), _) => {
                        line += 1;
                        i += 1;
                    }
                    (Some(_), _) => i += 1,
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if (c == 'r' || c == 'b') && is_string_prefix(&chars, i) {
            let (value, consumed, newlines) = lex_prefixed_string(&chars, i);
            push_tok!(Tok::Str(value), line);
            line += newlines;
            i += consumed;
            continue;
        }
        // Raw identifier `r#name`: one Ident token keeping the `r#`
        // prefix, so keyword-driven rules never mistake `r#unsafe` for
        // the `unsafe` keyword, while `fn r#match` definitions and
        // `r#match(..)` call sites still lex to the same name.
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).copied().is_some_and(is_ident_start)
        {
            let start = i;
            i += 2;
            while chars.get(i).copied().is_some_and(is_ident_continue) {
                i += 1;
            }
            // gps-lint: allow(no_slice_index) -- i only advances while chars.get(i) is Some
            push_tok!(Tok::Ident(chars[start..i].iter().collect()), line);
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while chars.get(i).copied().is_some_and(is_ident_continue) {
                i += 1;
            }
            // gps-lint: allow(no_slice_index) -- i only advances while chars.get(i) is Some
            push_tok!(Tok::Ident(chars[start..i].iter().collect()), line);
            continue;
        }
        if c.is_ascii_digit() {
            let (float, consumed) = lex_number(&chars, i);
            push_tok!(Tok::Num { float }, line);
            i += consumed;
            continue;
        }
        if c == '"' {
            let (value, consumed, newlines) = lex_plain_string(&chars, i);
            push_tok!(Tok::Str(value), line);
            line += newlines;
            i += consumed;
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.is_some_and(is_ident_start) && after != Some('\'') {
                // Lifetime: skip the quote and the identifier.
                i += 1;
                while chars.get(i).copied().is_some_and(is_ident_continue) {
                    i += 1;
                }
                continue;
            }
            let (consumed, _) = lex_char_literal(&chars, i);
            push_tok!(Tok::Str(String::new()), line);
            i += consumed;
            continue;
        }
        push_tok!(Tok::Punct(c), line);
        i += 1;
    }
    out
}

/// Does the `r` / `b` / `rb` / `br` run at `i` introduce a string?
fn is_string_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while matches!(chars.get(j), Some('r') | Some('b')) && j < i + 2 {
        j += 1;
    }
    match chars.get(j) {
        Some('"') => true,
        Some('#') => {
            // Raw string `r#"` vs raw identifier `r#type`.
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            chars.get(k) == Some(&'"')
        }
        _ => false,
    }
}

/// Lexes a string starting at a `r`/`b` prefix. Returns
/// `(content, chars_consumed, newlines)`.
fn lex_prefixed_string(chars: &[char], i: usize) -> (String, usize, u32) {
    let mut j = i;
    let mut raw = false;
    while matches!(chars.get(j), Some('r') | Some('b')) && j < i + 2 {
        raw |= chars.get(j) == Some(&'r');
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        // Opening quote.
        j += 1;
        let start = j;
        let mut newlines = 0u32;
        loop {
            match chars.get(j) {
                // gps-lint: allow(no_slice_index) -- get(j) == None means j == chars.len(); start <= j
                None => return (chars[start..j].iter().collect(), j - i, newlines),
                Some('\n') => {
                    newlines += 1;
                    j += 1;
                }
                Some('"') => {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while seen < hashes && chars.get(k) == Some(&'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        // gps-lint: allow(no_slice_index) -- chars[j] is the closing quote, so j < chars.len()
                        return (chars[start..j].iter().collect(), k - i, newlines);
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    } else {
        // Byte string: same shape as a plain string after the prefix.
        let (value, consumed, newlines) = lex_plain_string(chars, j);
        (value, (j - i) + consumed, newlines)
    }
}

/// Lexes a `"…"` string starting at the opening quote. Returns
/// `(content, chars_consumed, newlines)`.
fn lex_plain_string(chars: &[char], i: usize) -> (String, usize, u32) {
    let start = i + 1;
    let mut j = start;
    let mut newlines = 0u32;
    loop {
        match chars.get(j) {
            None | Some('"') => break,
            Some('\\') => {
                // A backslash-newline continuation still ends a source
                // line; missing it would shift every later line number.
                if chars.get(j + 1) == Some(&'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            Some('\n') => {
                newlines += 1;
                j += 1;
            }
            Some(_) => j += 1,
        }
    }
    let end = j.min(chars.len());
    let consumed = if chars.get(j) == Some(&'"') {
        j + 1 - i
    } else {
        end - i
    };
    // gps-lint: allow(no_slice_index) -- end = j.min(chars.len()) and start <= end
    (chars[start..end].iter().collect(), consumed, newlines)
}

/// Lexes a char literal starting at the opening `'`.
fn lex_char_literal(chars: &[char], i: usize) -> (usize, ()) {
    let mut j = i + 1;
    loop {
        match chars.get(j) {
            None => return (j - i, ()),
            Some('\\') => j += 2,
            Some('\'') => return (j + 1 - i, ()),
            Some(_) => j += 1,
        }
    }
}

/// Lexes a numeric literal; returns `(is_float, chars_consumed)`.
fn lex_number(chars: &[char], i: usize) -> (bool, usize) {
    let mut j = i;
    let mut float = false;
    let hex = chars.get(j) == Some(&'0')
        && matches!(
            chars.get(j + 1),
            Some('x') | Some('X') | Some('o') | Some('b')
        );
    if hex {
        j += 2;
        while chars
            .get(j)
            .copied()
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            j += 1;
        }
    } else {
        while chars
            .get(j)
            .copied()
            .is_some_and(|c| c.is_ascii_digit() || c == '_')
        {
            j += 1;
        }
        // A decimal point only if followed by a digit (so `0..n` and
        // `1.method()` are not floats).
        if chars.get(j) == Some(&'.')
            && chars
                .get(j + 1)
                .copied()
                .is_some_and(|c| c.is_ascii_digit())
        {
            float = true;
            j += 1;
            while chars
                .get(j)
                .copied()
                .is_some_and(|c| c.is_ascii_digit() || c == '_')
            {
                j += 1;
            }
        }
        if matches!(chars.get(j), Some('e') | Some('E'))
            && chars
                .get(j + 1)
                .copied()
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
        {
            float = true;
            j += 1;
            while chars
                .get(j)
                .copied()
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '_')
            {
                j += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`…).
    let suffix_start = j;
    while chars.get(j).copied().is_some_and(is_ident_continue) {
        j += 1;
    }
    // gps-lint: allow(no_slice_index) -- j only advances while chars.get(j) is Some
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    (float, j - i)
}

/// Marks tokens covered by `#[test]`-like attributes as test code.
///
/// An attribute whose idents include `test` (and not `not`, so
/// `#[cfg(not(test))]` stays product code) marks the item that follows —
/// through any further attributes — up to the matching `}` of its body, or
/// the terminating `;` for body-less items.
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(tokens, i + 1) else {
            return;
        };
        // gps-lint: allow(no_slice_index) -- matching_bracket returns an in-bounds index
        if !attr_is_test(&tokens[i..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while is_attr_start(tokens, j) {
            match matching_bracket(tokens, j + 1) {
                Some(e) => j = e + 1,
                None => return,
            }
        }
        // Find the item body: the first `{` before any top-level `;`.
        let mut k = j;
        let body_end = loop {
            match tokens.get(k).map(|t| &t.tok) {
                None => break tokens.len().saturating_sub(1),
                Some(Tok::Punct(';')) => break k,
                Some(Tok::Punct('{')) => {
                    break matching_brace(tokens, k)
                        .unwrap_or_else(|| tokens.len().saturating_sub(1))
                }
                _ => k += 1,
            }
        };
        for t in tokens.iter_mut().take(body_end + 1).skip(i) {
            t.in_test = true;
        }
        i = body_end + 1;
    }
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
        && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
}

/// Given `open` at the `[`, returns the index of the matching `]`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
            _ => {}
        }
    }
    None
}

/// Given `open` at the `{`, returns the index of the matching `}`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the attribute token slice (from `#` to `]`) mark test code?
fn attr_is_test(attr: &[Token]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in attr {
        if let Tok::Ident(name) = &t.tok {
            has_test |= name == "test";
            has_not |= name == "not";
        }
    }
    has_test && !has_not
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized() {
        let src = r##"
            let x = "HashMap::new()"; // HashMap here too
            /* HashMap in /* nested */ block */
            let y = r#"HashSet"#;
            call(x);
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet"));
        assert!(ids.contains(&"call".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        // One Str token for 'x', none for the lifetimes.
        let strs = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Str(_)))
            .count();
        assert_eq!(strs, 1);
        assert!(idents(src).contains(&"str".to_owned()));
    }

    #[test]
    fn floats_vs_ranges() {
        let one = |src: &str| match lex(src).tokens.first().map(|t| t.tok.clone()) {
            Some(Tok::Num { float }) => float,
            other => panic!("expected number, got {other:?}"),
        };
        assert!(one("1.5"));
        assert!(one("1e3"));
        assert!(one("2f64"));
        assert!(!one("1"));
        assert!(!one("0x1f"));
        // `0..10` lexes as int, dot, dot, int.
        let toks = lex("0..10").tokens;
        assert_eq!(toks.len(), 4);
        assert!(matches!(toks[0].tok, Tok::Num { float: false }));
    }

    #[test]
    fn comments_track_line_and_position() {
        let src = "let a = 1; // trailing\n// standalone\nlet b = 2;\n/// doc\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[2].doc);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules_but_not_cfg_not_test() {
        let src = "
fn product() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
#[cfg(not(test))]
fn also_product() { z.unwrap(); }
";
        let mut lexed = lex(src);
        mark_test_regions(&mut lexed.tokens);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_straight() {
        let src = "let a = \"line\nbreak\";\nlet b = 1;";
        let lexed = lex(src);
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }
}
