//! Rule passes, waiver handling and findings.
//!
//! Rules fall into three families (see `DESIGN.md`):
//!
//! * **determinism** — `no_hash_collections`, `no_wall_clock`,
//!   `float_cycle_arith`, `float_eq`: sources of cross-run or cross-host
//!   variation in crates whose code can influence a `SimReport` (exact
//!   `f64` equality is in this family because a comparison that flips
//!   under rounding flips the report with it).
//! * **panic hygiene** — `no_unwrap`, `no_expect`, `no_slice_index`:
//!   panics in non-test library code must be justified by a waiver.
//! * **probe coverage** — `probe_dead_name`, `probe_unregistered_name`:
//!   the `gps-obs` name registry and the instrumented probe sites must
//!   agree in both directions.
//!
//! Findings on a line are suppressed by an inline waiver carrying a
//! reason:
//!
//! ```text
//! // gps-lint: allow(no_unwrap) -- mutex poisoning implies a prior panic
//! ```
//!
//! A waiver on its own line covers the next code line; a trailing waiver
//! covers its own line. A waiver that suppresses nothing is itself an
//! error (`unused_waiver`), so stale annotations cannot accumulate.

use crate::config::Config;
use crate::lexer::{Lexed, Tok, Token};

/// Every configurable rule id, in stable (reporting) order.
pub const RULE_IDS: &[&str] = &[
    "no_hash_collections",
    "no_wall_clock",
    "float_cycle_arith",
    "float_eq",
    "no_unwrap",
    "no_expect",
    "no_slice_index",
    "probe_dead_name",
    "probe_unregistered_name",
    "relaxed_atomic_ordering",
    "shared_mut_in_worker",
    "lane_tier_purity",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULE_IDS`], or the meta-rules `bad_waiver` /
    /// `unused_waiver`).
    pub rule: String,
    /// Root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `// gps-lint: allow(..) -- reason` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses (0 = dangling, never matches).
    pub target: u32,
    /// Rule ids it suppresses.
    pub rules: Vec<String>,
    /// Whether it suppressed at least one finding.
    pub used: bool,
}

/// One lexed source file, ready for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path, `/`-separated.
    pub rel_path: String,
    /// Owning crate: the directory name under `crates/`, or `gps` for the
    /// root package.
    pub crate_name: String,
    /// Test-support file (under `tests/`, `benches/`, `examples/` or
    /// fixtures): rules and waivers are skipped entirely.
    pub exempt: bool,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Waivers parsed out of the comments.
    pub waivers: Vec<Waiver>,
}

const WAIVER_PREFIX: &str = "gps-lint:";

/// Parses waivers from a file's comments; malformed waivers become
/// `bad_waiver` findings immediately.
pub fn collect_waivers(rel_path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        if c.doc {
            continue;
        }
        let Some(body) = c.text.trim().strip_prefix(WAIVER_PREFIX) else {
            continue;
        };
        match parse_waiver_body(body.trim()) {
            Ok(rules) => {
                let target = if c.trailing {
                    c.line
                } else {
                    next_code_line(&lexed.tokens, c.line)
                };
                waivers.push(Waiver {
                    line: c.line,
                    target,
                    rules,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding {
                rule: "bad_waiver".to_owned(),
                file: rel_path.to_owned(),
                line: c.line,
                message: format!("malformed waiver: {why}"),
            }),
        }
    }
    waivers
}

/// `allow(rule_a, rule_b) -- reason` → the rule list.
fn parse_waiver_body(body: &str) -> Result<Vec<String>, String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or("expected `allow(<rule>, ..) -- <reason>`")?;
    let (ids, tail) = rest
        .split_once(')')
        .ok_or("unclosed rule list, expected `)`")?;
    let reason = tail
        .trim()
        .strip_prefix("--")
        .map(str::trim)
        .ok_or("missing `-- <reason>`")?;
    if reason.is_empty() {
        return Err("empty reason after `--`".to_owned());
    }
    let rules: Vec<String> = ids
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if rules.is_empty() {
        return Err("empty rule list".to_owned());
    }
    for r in &rules {
        if !RULE_IDS.contains(&r.as_str()) {
            return Err(format!("unknown rule {r:?}"));
        }
    }
    Ok(rules)
}

/// First line strictly after `line` that holds a code token.
fn next_code_line(tokens: &[Token], line: u32) -> u32 {
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > line)
        .min()
        .unwrap_or(0)
}

/// Reports `finding` unless a waiver on its line absorbs it (the waiver is
/// then marked used). Shared with the workspace-level passes in
/// `wsrules`, which emit through the same waiver machinery.
pub(crate) fn emit_waivable(
    findings: &mut Vec<Finding>,
    waivers: &mut [Waiver],
    waived: &mut usize,
    finding: Finding,
) {
    for w in waivers.iter_mut() {
        if w.target == finding.line && w.rules.contains(&finding.rule) {
            w.used = true;
            *waived += 1;
            return;
        }
    }
    findings.push(finding);
}

/// Runs every per-file rule enabled for `file`'s crate. Returns the number
/// of findings waived away.
pub fn run_file_rules(file: &mut SourceFile, cfg: &Config, findings: &mut Vec<Finding>) -> usize {
    let mut waived = 0usize;
    if file.exempt {
        return waived;
    }
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let on = |rule: &str| cfg.applies(rule, &file.crate_name);

    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match &t.tok {
            Tok::Ident(name)
                if on("no_hash_collections") && (name == "HashMap" || name == "HashSet") =>
            {
                out.push(Finding {
                    rule: "no_hash_collections".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "{name} iterates in randomized order; use BTree{} in report-affecting code",
                        if name == "HashMap" { "Map" } else { "Set" }
                    ),
                });
            }
            Tok::Ident(name)
                if on("no_wall_clock") && (name == "Instant" || name == "SystemTime") =>
            {
                out.push(Finding {
                    rule: "no_wall_clock".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "{name} reads the host clock; simulated results must not depend on wall time"
                    ),
                });
            }
            Tok::Ident(name)
                if on("no_wall_clock")
                    && name == "thread"
                    && ident_at(toks, i + 3).is_some_and(|n| n == "current")
                    && punct_at(toks, i + 1) == Some(':')
                    && punct_at(toks, i + 2) == Some(':') =>
            {
                out.push(Finding {
                    rule: "no_wall_clock".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: "thread identity is scheduler-dependent; derive nothing from it"
                        .to_owned(),
                });
            }
            Tok::Ident(name)
                if on("float_cycle_arith")
                    && name.to_ascii_lowercase().contains("cycle")
                    && punct_at(toks, i + 1) == Some('+')
                    && punct_at(toks, i + 2) == Some('=')
                    && float_before_semicolon(toks, i + 3) =>
            {
                out.push(Finding {
                    rule: "float_cycle_arith".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "float accumulation into {name:?}: cycle math must stay integral \
                         (floats accumulate rounding that varies with evaluation order)"
                    ),
                });
            }
            // `==` lexes as two `Punct('=')`; arm on the first one. The
            // prev-punct guard keeps the arm off the second `=` of `==`
            // itself and off `<=`, `>=`, `!=` and the compound-assignment
            // family.
            Tok::Punct('=')
                if on("float_eq")
                    && punct_at(toks, i + 1) == Some('=')
                    && !matches!(
                        punct_at(toks, i.wrapping_sub(1)),
                        Some('=' | '<' | '>' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
                    )
                    && (float_operand(toks, i.wrapping_sub(1)) || float_operand(toks, i + 2)) =>
            {
                out.push(float_eq_finding(&file.rel_path, t.line, "=="));
            }
            Tok::Punct('!')
                if on("float_eq")
                    && punct_at(toks, i + 1) == Some('=')
                    && (float_operand(toks, i.wrapping_sub(1)) || float_operand(toks, i + 2)) =>
            {
                out.push(float_eq_finding(&file.rel_path, t.line, "!="));
            }
            Tok::Ident(name)
                if (name == "unwrap" && on("no_unwrap") || name == "expect" && on("no_expect"))
                    && punct_at(toks, i.wrapping_sub(1)) == Some('.')
                    && punct_at(toks, i + 1) == Some('(') =>
            {
                let rule = if name == "unwrap" {
                    "no_unwrap"
                } else {
                    "no_expect"
                };
                out.push(Finding {
                    rule: rule.to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        ".{name}() in library code: propagate the error or waive with the \
                         reason it cannot fail"
                    ),
                });
            }
            Tok::Punct('[') if on("no_slice_index") && is_index_open(toks, i) => {
                out.push(Finding {
                    rule: "no_slice_index".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: "slice/array indexing panics out of bounds; use .get() or waive \
                              with the bound that holds"
                        .to_owned(),
                });
            }
            _ => {}
        }
    }
    for f in out {
        emit_waivable(findings, &mut file.waivers, &mut waived, f);
    }
    waived
}

/// Is the token at `i` visibly a float — a float literal, or an `f32`/
/// `f64` ident (suffix position of an `as` cast or a turbofish)? Untyped
/// identifiers are invisible to a token-level pass, so `a == b` on two
/// `f64` bindings escapes; the rule trades that miss for zero false
/// positives on integer comparisons.
fn float_operand(toks: &[Token], i: usize) -> bool {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Num { float }) => *float,
        Some(Tok::Ident(s)) => s == "f32" || s == "f64",
        _ => false,
    }
}

fn float_eq_finding(rel_path: &str, line: u32, op: &str) -> Finding {
    Finding {
        rule: "float_eq".to_owned(),
        file: rel_path.to_owned(),
        line,
        message: format!(
            "exact float `{op}` comparison: rounding makes it flip across hosts and \
             evaluation orders; compare integers, use an epsilon, or waive with why \
             exactness holds"
        ),
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Any float literal or `f32`/`f64` ident between `start` and the next
/// top-level `;`?
fn float_before_semicolon(toks: &[Token], start: usize) -> bool {
    for t in toks.iter().skip(start) {
        match &t.tok {
            Tok::Punct(';') => return false,
            Tok::Num { float: true } => return true,
            Tok::Ident(s) if s == "f32" || s == "f64" => return true,
            _ => {}
        }
    }
    false
}

/// Is the `[` at `i` an index expression (`expr[..]`) rather than an
/// array literal/type, attribute, or macro delimiter?
fn is_index_open(toks: &[Token], i: usize) -> bool {
    let indexable = match i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok) {
        // `mut`/`dyn` before `[` is a type position (`&mut [T]`) and
        // `in`/`return`/`break`/`else` before `[` start an array literal
        // (`for x in [..]`) — none of these keywords can name an
        // indexable value.
        Some(Tok::Ident(s)) => !matches!(
            s.as_str(),
            "mut" | "dyn" | "in" | "return" | "break" | "else"
        ),
        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `vec![..]`-style macros: ident, `!`, `[` — the prior token would be
    // `!`, so `indexable` is already false; nothing more to do for macros.
    // Full-range slices `x[..]` cannot panic: skip when the index is
    // exactly `..`.
    if punct_at(toks, i + 1) == Some('.')
        && punct_at(toks, i + 2) == Some('.')
        && punct_at(toks, i + 3) == Some(']')
    {
        return false;
    }
    true
}

/// A `pub const NAME: &str = "value";` entry of the probe-name registry.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// Constant identifier (`TLB_HIT`).
    pub ident: String,
    /// Series name (`"tlb_hit"`).
    pub value: String,
    /// Line of the declaration.
    pub line: u32,
}

/// Extracts registry entries from the lexed registry file.
pub fn parse_registry(lexed: &Lexed) -> Vec<RegistryEntry> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // gps-lint: allow(no_slice_index) -- i ranges over 0..toks.len()
        if toks[i].in_test {
            continue;
        }
        // const IDENT : & str = "value" ;
        if ident_at(toks, i) == Some("const") {
            let (Some(name), Some(value)) = (ident_at(toks, i + 1), toks.get(i + 6)) else {
                continue;
            };
            let shape_ok = punct_at(toks, i + 2) == Some(':')
                && punct_at(toks, i + 3) == Some('&')
                && ident_at(toks, i + 4) == Some("str")
                && punct_at(toks, i + 5) == Some('=');
            if let (true, Tok::Str(v)) = (shape_ok, &value.tok) {
                out.push(RegistryEntry {
                    ident: name.to_owned(),
                    value: v.clone(),
                    // gps-lint: allow(no_slice_index) -- i ranges over 0..toks.len()
                    line: toks[i].line,
                });
            }
        }
    }
    out
}

/// A probe emission/read site's name argument.
#[derive(Debug)]
pub struct ProbeSite {
    /// File the site lives in.
    pub file: String,
    /// Crate the site lives in.
    pub crate_name: String,
    /// Line of the name argument.
    pub line: u32,
    /// Literal series name, if the argument is (or contains) a string.
    pub literal: Option<String>,
    /// Identifiers appearing in the argument (`names`, `TLB_HIT`, …).
    pub idents: Vec<String>,
}

/// Collects the name argument of every `.counter(` / `.gauge(` /
/// `.instant(` / `.latency(` call in non-test code.
pub fn collect_probe_sites(file: &SourceFile, out: &mut Vec<ProbeSite>) {
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        // gps-lint: allow(no_slice_index) -- i ranges over 0..toks.len()
        if toks[i].in_test {
            continue;
        }
        let is_call = matches!(
            ident_at(toks, i),
            Some("counter") | Some("gauge") | Some("instant") | Some("latency")
        ) && punct_at(toks, i.wrapping_sub(1)) == Some('.')
            && punct_at(toks, i + 1) == Some('(');
        if !is_call {
            continue;
        }
        // Walk the argument list; the name is argument index 1
        // (`(track, name, ..)`).
        let mut depth = 0usize;
        let mut arg = 0usize;
        let mut literal = None;
        let mut idents = Vec::new();
        // gps-lint: allow(no_slice_index) -- i ranges over 0..toks.len()
        let mut line = toks[i].line;
        for t in toks.iter().skip(i + 1) {
            match &t.tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct(',') if depth == 1 => arg += 1,
                Tok::Str(s) if depth >= 1 && arg == 1 && literal.is_none() => {
                    literal = Some(s.clone());
                    line = t.line;
                }
                Tok::Ident(s) if depth >= 1 && arg == 1 => {
                    idents.push(s.clone());
                    line = t.line;
                }
                _ => {}
            }
            if arg > 1 {
                break;
            }
        }
        out.push(ProbeSite {
            file: file.rel_path.clone(),
            crate_name: file.crate_name.clone(),
            line,
            literal,
            idents,
        });
    }
}

/// Cross-file probe-coverage pass: registry entries nobody emits
/// (`probe_dead_name`, reported in the registry file) and emissions of
/// unregistered names (`probe_unregistered_name`, reported at the site).
pub fn run_probe_rules(
    registry: &[RegistryEntry],
    registry_file: &mut SourceFile,
    sites: &[ProbeSite],
    site_files: &mut [SourceFile],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut waived = 0usize;
    if cfg.enabled("probe_unregistered_name") {
        for site in sites {
            if !cfg.applies("probe_unregistered_name", &site.crate_name) {
                continue;
            }
            let Some(name) = &site.literal else { continue };
            if registry.iter().any(|e| e.value == *name) {
                continue;
            }
            let finding = Finding {
                rule: "probe_unregistered_name".to_owned(),
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "probe series {name:?} is not in the gps-obs name registry; register it \
                     in names.rs (or emit through the registry constant)"
                ),
            };
            match site_files.iter_mut().find(|f| f.rel_path == site.file) {
                Some(f) => emit_waivable(findings, &mut f.waivers, &mut waived, finding),
                None => findings.push(finding),
            }
        }
    }
    if cfg.enabled("probe_dead_name") {
        for entry in registry {
            let emitted = sites.iter().any(|s| {
                s.literal.as_deref() == Some(entry.value.as_str())
                    || s.idents.contains(&entry.ident)
            });
            if emitted {
                continue;
            }
            let finding = Finding {
                rule: "probe_dead_name".to_owned(),
                file: registry_file.rel_path.clone(),
                line: entry.line,
                message: format!(
                    "registered series {:?} ({}) is emitted by no probe site: dead telemetry",
                    entry.value, entry.ident
                ),
            };
            emit_waivable(findings, &mut registry_file.waivers, &mut waived, finding);
        }
    }
    waived
}

/// Turns every unused waiver into an `unused_waiver` finding.
pub fn report_unused_waivers(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        for w in &file.waivers {
            if !w.used {
                findings.push(Finding {
                    rule: "unused_waiver".to_owned(),
                    file: file.rel_path.clone(),
                    line: w.line,
                    message: format!(
                        "waiver for {} suppresses nothing; delete it (stale waivers hide \
                         future violations)",
                        w.rules.join(", ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn file_for(src: &str, crate_name: &str) -> (SourceFile, Vec<Finding>) {
        let mut lexed = lexer::lex(src);
        lexer::mark_test_regions(&mut lexed.tokens);
        let mut findings = Vec::new();
        let waivers = collect_waivers("test.rs", &lexed, &mut findings);
        (
            SourceFile {
                rel_path: "test.rs".to_owned(),
                crate_name: crate_name.to_owned(),
                exempt: false,
                lexed,
                waivers,
            },
            findings,
        )
    }

    fn cfg_all() -> Config {
        let entries = RULE_IDS
            .iter()
            .map(|r| (r.to_string(), vec!["*".to_owned()]))
            .collect();
        Config {
            exclude: Vec::new(),
            probe_registry: None,
            rule_crates: entries,
            cross_crate: Default::default(),
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let (mut file, mut findings) = file_for(src, "any");
        run_file_rules(&mut file, &cfg_all(), &mut findings);
        report_unused_waivers(&[file], &mut findings);
        findings
    }

    #[test]
    fn hash_collections_and_wall_clock_flagged() {
        let f = run("use std::collections::HashMap;\nlet t = Instant::now();\nlet id = thread::current().id();\n");
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec!["no_hash_collections", "no_wall_clock", "no_wall_clock"]
        );
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn trailing_and_standalone_waivers_suppress_and_unused_errors() {
        let src = "\
let a = x.unwrap(); // gps-lint: allow(no_unwrap) -- checked above
// gps-lint: allow(no_expect) -- infallible by construction
let b = y.expect(\"m\");
// gps-lint: allow(no_unwrap) -- stale
let c = 1;
";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unused_waiver");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn malformed_waivers_are_bad_waiver_findings() {
        let cases = [
            "// gps-lint: allow(no_unwrap)\nlet a = 1;", // no reason
            "// gps-lint: allow(no_unwrap) -- \nlet a = 1;", // empty reason
            "// gps-lint: allow(bogus_rule) -- why\nlet a = 1;",
            "// gps-lint: disallow(no_unwrap) -- why\nlet a = 1;",
        ];
        for src in cases {
            let f = run(src);
            assert_eq!(
                f.first().map(|f| f.rule.as_str()),
                Some("bad_waiver"),
                "{src}"
            );
        }
    }

    #[test]
    fn test_code_is_exempt() {
        let f =
            run("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); let m = HashMap::new(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn slice_index_heuristics() {
        let f = run("let a = xs[i];\nlet b = &xs[..];\nlet c = vec![1];\n#[derive(Debug)]\nlet d: [u8; 4] = [0; 4];\nlet e = f(x)[0];\n");
        let lines: Vec<u32> = f.iter().map(|f| f.line).collect();
        assert_eq!(
            f.iter().map(|f| f.rule.as_str()).collect::<Vec<_>>(),
            vec!["no_slice_index", "no_slice_index"],
            "{f:?}"
        );
        assert_eq!(lines, vec![1, 6]);
    }

    #[test]
    fn float_cycle_accumulation_flagged_integer_ok() {
        let f = run("total_cycles += busy as f64;\nself.cycles += 1;\nlatency_cycles += 0.5;\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "float_cycle_arith"));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn float_equality_flagged_integer_and_ordering_ok() {
        let f = run("let a = x == 1.5;\nlet b = 0.5 != y;\nlet c = n as f64 == m;\nlet d = n == 42;\nlet e = x <= 1.5;\nlet g = x >= 0.5;\nlet h = x = 1.5;\n");
        assert!(f.iter().all(|f| f.rule == "float_eq"), "{f:?}");
        let lines: Vec<u32> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2, 3], "{f:?}");
    }

    #[test]
    fn float_eq_waiver_suppresses() {
        let f = run("let a = x == 1.5; // gps-lint: allow(float_eq) -- exactness intended\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn probe_rules_cross_check_registry_and_sites() {
        let reg_src = "pub const TLB_HIT: &str = \"tlb_hit\";\npub const DEAD: &str = \"dead_series\";\npub const SOJOURN: &str = \"sojourn\";\n";
        let (mut reg_file, mut findings) = file_for(reg_src, "obs");
        let registry = parse_registry(&reg_file.lexed);
        assert_eq!(registry.len(), 3);

        let site_src = "\
probe.counter(track, names::TLB_HIT, now, 1.0);
probe.counter(track, \"rogue_series\", now, 1.0);
probe.latency(track, names::SOJOURN, now, 7);
";
        let (mut site_file, _) = file_for(site_src, "sim");
        let mut sites = Vec::new();
        collect_probe_sites(&site_file, &mut sites);
        assert_eq!(sites.len(), 3, "latency sites are collected too");

        let files = std::slice::from_mut(&mut site_file);
        run_probe_rules(
            &registry,
            &mut reg_file,
            &sites,
            files,
            &cfg_all(),
            &mut findings,
        );
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["probe_unregistered_name", "probe_dead_name"]);
        assert_eq!(findings[0].line, 2, "site line");
        assert_eq!(findings[1].line, 2, "registry line of DEAD");
    }
}
