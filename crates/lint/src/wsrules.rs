//! Workspace-level rule passes: the reachability rules that need the
//! symbol table and call graph, plus `relaxed_atomic_ordering` (token
//! shaped, but introduced alongside them and reported through the same
//! stats machinery).
//!
//! All findings emitted here are waivable exactly like the per-file
//! rules: an inline `// gps-lint: allow(<rule>) -- <reason>` on the
//! hazard line absorbs them, and unused waivers still error.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::Tok;
use crate::rules::{emit_waivable, Finding, SourceFile};
use crate::symbols::SymbolTable;

/// Interior-mutability idents that defeat worker-count invariance when
/// shared across lane workers.
const SHARED_MUT_IDENTS: &[&str] = &["Cell", "RefCell", "UnsafeCell"];

/// Types whose `&mut self` methods count as direct cross-lane policy
/// mutation for `lane_tier_purity`.
const TIER_MUTATION_SINKS: &[&str] = &["Fabric", "GpsSystem", "GpsRuntime"];

/// The sanctioned cross-lane effect channel: methods owned by this type
/// are the boundary `lane_tier_purity` protects, so their own calls into
/// the sinks are exempt.
const TIER_CHANNEL_OWNER: &str = "GpsLaneRouter";

/// Flags `Ordering::Relaxed` in report-affecting crates: relaxed atomics
/// allow cross-thread reorderings that can leak into aggregation order.
/// Pure work-claim counters (fetch_add where only uniqueness matters) get
/// reasoned waivers.
pub fn run_relaxed_atomic(
    files: &mut [SourceFile],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut waived = 0usize;
    for file in files.iter_mut() {
        if file.exempt || !cfg.applies("relaxed_atomic_ordering", &file.crate_name) {
            continue;
        }
        let toks = &file.lexed.tokens;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            // `Ordering :: Relaxed` (the lexer splits `::` into two `:`).
            let is_relaxed = matches!(&t.tok, Tok::Ident(s) if s == "Relaxed")
                && punct(toks, i.wrapping_sub(1)) == Some(':')
                && punct(toks, i.wrapping_sub(2)) == Some(':')
                && ident(toks, i.wrapping_sub(3)).is_some_and(|s| s.ends_with("Ordering"));
            if is_relaxed {
                out.push(Finding {
                    rule: "relaxed_atomic_ordering".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: "Ordering::Relaxed permits cross-thread reordering; use \
                              Acquire/Release (or waive with why the value never feeds a report)"
                        .to_owned(),
                });
            }
        }
        for f in out {
            emit_waivable(findings, &mut file.waivers, &mut waived, f);
        }
    }
    waived
}

/// Flags interior mutability (`Cell`/`RefCell`/`UnsafeCell`, `static
/// mut`, `unsafe`) in functions reachable from a `std::thread::scope`
/// call in a crate the rule is scoped to: anything a lane worker can
/// touch must be behind the per-lane router or a proper atomic, or
/// worker-count invariance is a fiction.
pub fn run_shared_mut_in_worker(
    files: &mut [SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> usize {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            cfg.applies("shared_mut_in_worker", &f.crate_name) && body_spawns_scope(files, table, f)
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return 0;
    }
    let from = graph.reach(&roots);
    let mut out: Vec<(usize, Finding)> = Vec::new();
    for (gi, g) in table.fns.iter().enumerate() {
        if from.get(gi).copied().flatten().is_none() {
            continue;
        }
        let Some((start, end)) = g.body else { continue };
        let Some(file) = files.get(g.file) else {
            continue;
        };
        let toks = &file.lexed.tokens;
        for i in (start + 1)..end {
            let Some(hazard) = shared_mut_hazard(toks, i) else {
                continue;
            };
            let Some(t) = toks.get(i) else { break };
            out.push((
                g.file,
                Finding {
                    rule: "shared_mut_in_worker".to_owned(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "{hazard} is reachable from a lane-worker scope \
                         (via {}); shared state in workers must be a per-lane router \
                         field or a proper atomic",
                        CallGraph::chain(table, &from, gi)
                    ),
                },
            ));
        }
    }
    emit_all(files, findings, out)
}

/// Does `f`'s body contain `thread :: scope (`?
fn body_spawns_scope(
    files: &[SourceFile],
    _table: &SymbolTable,
    f: &crate::symbols::FnSym,
) -> bool {
    let Some((start, end)) = f.body else {
        return false;
    };
    let Some(file) = files.get(f.file) else {
        return false;
    };
    let toks = &file.lexed.tokens;
    ((start + 1)..end).any(|i| {
        ident(toks, i) == Some("thread")
            && punct(toks, i + 1) == Some(':')
            && punct(toks, i + 2) == Some(':')
            && ident(toks, i + 3) == Some("scope")
            && punct(toks, i + 4) == Some('(')
    })
}

/// An interior-mutability hazard at token `i`, if any.
fn shared_mut_hazard(toks: &[crate::lexer::Token], i: usize) -> Option<&'static str> {
    let name = ident(toks, i)?;
    if let Some(&h) = SHARED_MUT_IDENTS.iter().find(|&&h| h == name) {
        return Some(h);
    }
    if name == "static" && ident(toks, i + 1) == Some("mut") {
        return Some("static mut");
    }
    if name == "unsafe" {
        return Some("unsafe");
    }
    None
}

/// Flags direct calls to `&mut self` methods of the shared-system types
/// (`Fabric`/`GpsSystem`/`GpsRuntime`) from functions reachable out of
/// lane-tier code (`LaneRouter` impl methods and `drain_window`), unless
/// the caller is itself a `GpsLaneRouter` method — that type *is* the
/// sanctioned cross-lane channel — or a method of one of the sink types:
/// the rule guards the boundary *crossing* from lane tier into the
/// shared system, and once inside, the system mutating its own state is
/// its implementation, not a cross-lane effect.
pub fn run_lane_tier_purity(
    files: &mut [SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> usize {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            cfg.applies("lane_tier_purity", &f.crate_name)
                && (f.trait_name.as_deref() == Some("LaneRouter") || f.name == "drain_window")
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return 0;
    }
    let sinks: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.mut_self
                && f.owner
                    .as_deref()
                    .is_some_and(|o| TIER_MUTATION_SINKS.contains(&o))
        })
        .map(|(i, _)| i)
        .collect();
    if sinks.is_empty() {
        return 0;
    }
    let from = graph.reach(&roots);
    let mut out: Vec<(usize, Finding)> = Vec::new();
    for (gi, g) in table.fns.iter().enumerate() {
        if from.get(gi).copied().flatten().is_none() {
            continue;
        }
        if g.owner
            .as_deref()
            .is_some_and(|o| o == TIER_CHANNEL_OWNER || TIER_MUTATION_SINKS.contains(&o))
        {
            continue;
        }
        let Some(file) = files.get(g.file) else {
            continue;
        };
        for site in graph.calls.get(gi).map(Vec::as_slice).unwrap_or(&[]) {
            let Some(&sink) = site.callees.iter().find(|c| sinks.contains(c)) else {
                continue;
            };
            let sink_fn = match table.fns.get(sink) {
                Some(s) => s,
                None => continue,
            };
            out.push((
                g.file,
                Finding {
                    rule: "lane_tier_purity".to_owned(),
                    file: file.rel_path.clone(),
                    line: site.line,
                    message: format!(
                        "lane-tier code (via {}) calls {}::{} which takes &mut self; \
                         cross-lane effects must route through GpsLaneRouter",
                        CallGraph::chain(table, &from, gi),
                        sink_fn.owner.as_deref().unwrap_or("?"),
                        sink_fn.name
                    ),
                },
            ));
        }
    }
    emit_all(files, findings, out)
}

/// Cross-crate reachability upgrade for `no_hash_collections` and
/// `no_wall_clock`: hazards in crates *outside* a rule's scope are still
/// flagged when the containing function is reachable from a scoped crate
/// (the per-file pass already covers scoped crates themselves).
pub fn run_cross_crate(
    files: &mut [SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut waived = 0usize;
    for rule in ["no_hash_collections", "no_wall_clock"] {
        if !cfg.cross_crate.contains(rule) {
            continue;
        }
        let roots: Vec<usize> = table
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| cfg.applies(rule, &f.crate_name))
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            continue;
        }
        let from = graph.reach(&roots);
        let mut out: Vec<(usize, Finding)> = Vec::new();
        for (gi, g) in table.fns.iter().enumerate() {
            if from.get(gi).copied().flatten().is_none() {
                continue;
            }
            // Scoped crates are the per-file pass's job; this pass exists
            // for the helpers they lean on.
            if cfg.applies(rule, &g.crate_name) {
                continue;
            }
            let Some((start, end)) = g.body else { continue };
            let Some(file) = files.get(g.file) else {
                continue;
            };
            let toks = &file.lexed.tokens;
            for i in (start + 1)..end {
                let Some(name) = ident(toks, i) else { continue };
                let hazard = match rule {
                    "no_hash_collections" => name == "HashMap" || name == "HashSet",
                    _ => {
                        (name == "Instant" || name == "SystemTime")
                            && wall_clock_evidence(table, toks, g.file, i, name)
                    }
                };
                if !hazard {
                    continue;
                }
                let Some(t) = toks.get(i) else { break };
                out.push((
                    g.file,
                    Finding {
                        rule: rule.to_owned(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "{name} in crate `{}` is outside the {rule} scope but reachable \
                             from report-affecting code (via {})",
                            g.crate_name,
                            CallGraph::chain(table, &from, gi)
                        ),
                    },
                ));
            }
        }
        // Collection-typed fields: a HashMap smuggled in as struct state
        // counts when any method of the owning type is reachable.
        if rule == "no_hash_collections" {
            for field in &table.fields {
                let Some(file) = files.get(field.file) else {
                    continue;
                };
                if cfg.applies(rule, &file.crate_name) {
                    continue;
                }
                let reached = table.fns.iter().enumerate().any(|(i, f)| {
                    from.get(i).copied().flatten().is_some()
                        && match &field.owner {
                            Some(owner) => f.owner.as_deref() == Some(owner),
                            None => f.file == field.file,
                        }
                });
                if !reached {
                    continue;
                }
                out.push((
                    field.file,
                    Finding {
                        rule: rule.to_owned(),
                        file: file.rel_path.clone(),
                        line: field.line,
                        message: format!(
                            "{} field on `{}` in crate `{}` is outside the {rule} scope but \
                             its methods are reachable from report-affecting code",
                            field.collection,
                            field.owner.as_deref().unwrap_or("<free>"),
                            file.crate_name
                        ),
                    },
                ));
            }
        }
        waived += emit_all(files, findings, out);
    }
    waived
}

/// Is the `Instant`/`SystemTime` ident at `i` actually the std wall
/// clock? Requires either a `std::time` import of that name in the file
/// or an inline `time :: Name` qualification — so an `Emission::Instant`
/// enum variant never fires.
fn wall_clock_evidence(
    table: &SymbolTable,
    toks: &[crate::lexer::Token],
    file: usize,
    i: usize,
    name: &str,
) -> bool {
    if table.imports_from(file, name, "time") {
        return true;
    }
    punct(toks, i.wrapping_sub(1)) == Some(':')
        && punct(toks, i.wrapping_sub(2)) == Some(':')
        && ident(toks, i.wrapping_sub(3)) == Some("time")
}

/// Emits findings collected as `(file index, finding)` through each
/// file's waivers; returns how many were waived.
fn emit_all(
    files: &mut [SourceFile],
    findings: &mut Vec<Finding>,
    out: Vec<(usize, Finding)>,
) -> usize {
    let mut waived = 0usize;
    for (fi, finding) in out {
        match files.get_mut(fi) {
            Some(file) => emit_waivable(findings, &mut file.waivers, &mut waived, finding),
            None => findings.push(finding),
        }
    }
    waived
}

fn ident(toks: &[crate::lexer::Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(toks: &[crate::lexer::Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}
