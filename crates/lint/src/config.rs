//! The committed `lint.toml` configuration: which rules run over which
//! crates.
//!
//! A deliberately small TOML subset, parsed by hand (the analyzer must
//! stay zero-dependency): `[lint]` and `[rule.<id>]` sections, `key =
//! "string"` and `key = ["a", "b"]` entries, `#` comments. Anything the
//! parser does not understand is an error, not a silent default — a typo
//! in a rule id must not quietly disable a gate.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::RULE_IDS;

/// Rules that understand `cross_crate = true` (reachability upgrades are
/// implemented per rule, so accepting the key anywhere else would be a
/// silently dead setting).
const CROSS_CRATE_RULES: &[&str] = &["no_hash_collections", "no_wall_clock"];

/// Parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Root-relative path prefixes to skip entirely (on top of the
    /// built-in `target/` and hidden-directory exclusions).
    pub exclude: Vec<String>,
    /// Root-relative path of the probe-name registry file scanned by the
    /// probe-coverage rules.
    pub probe_registry: Option<String>,
    /// Rule id → crate names it applies to (`"*"` = every crate; the
    /// root package's `src/` is the crate `"gps"`). A rule with no entry
    /// is off.
    pub rule_crates: BTreeMap<String, Vec<String>>,
    /// Rules with the cross-crate reachability upgrade enabled
    /// (`cross_crate = true`): hazards outside the rule's crate scope are
    /// still reported when reachable from inside it.
    pub cross_crate: BTreeSet<String>,
}

impl Config {
    /// Is `rule` enabled for `crate_name`?
    pub fn applies(&self, rule: &str, crate_name: &str) -> bool {
        self.rule_crates
            .get(rule)
            .is_some_and(|crates| crates.iter().any(|c| c == "*" || c == crate_name))
    }

    /// Is `rule` enabled anywhere at all?
    pub fn enabled(&self, rule: &str) -> bool {
        self.rule_crates
            .get(rule)
            .is_some_and(|crates| !crates.is_empty())
    }

    /// Parses the config text.
    ///
    /// # Errors
    ///
    /// Returns a `<line>: <problem>` description for malformed syntax,
    /// unknown sections, unknown keys, or unknown rule ids.
    pub fn parse(text: &str) -> Result<Config, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Lint,
            Rule(String),
        }
        let mut cfg = Config::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name.trim() {
                    "lint" => Section::Lint,
                    other => match other.strip_prefix("rule.") {
                        Some(id) if RULE_IDS.contains(&id) => {
                            cfg.rule_crates.entry(id.to_owned()).or_default();
                            Section::Rule(id.to_owned())
                        }
                        Some(id) => {
                            return Err(format!("{lineno}: unknown rule id {id:?}"));
                        }
                        None => return Err(format!("{lineno}: unknown section [{other}]")),
                    },
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("{lineno}: expected `key = value`"))?;
            match (&section, key) {
                (Section::Lint, "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
                (Section::Lint, "probe_registry") => {
                    cfg.probe_registry = Some(parse_string(value, lineno)?);
                }
                (Section::Lint, other) => {
                    return Err(format!("{lineno}: unknown [lint] key {other:?}"));
                }
                (Section::Rule(id), "crates") => {
                    cfg.rule_crates
                        .insert(id.clone(), parse_string_array(value, lineno)?);
                }
                (Section::Rule(id), "cross_crate") => {
                    if !CROSS_CRATE_RULES.contains(&id.as_str()) {
                        return Err(format!(
                            "{lineno}: cross_crate is not supported for rule {id:?} \
                             (only {CROSS_CRATE_RULES:?})"
                        ));
                    }
                    if parse_bool(value, lineno)? {
                        cfg.cross_crate.insert(id.clone());
                    } else {
                        cfg.cross_crate.remove(id);
                    }
                }
                (Section::Rule(_), other) => {
                    return Err(format!("{lineno}: unknown rule key {other:?}"));
                }
                (Section::None, _) => {
                    return Err(format!("{lineno}: entry before any [section]"));
                }
            }
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            // gps-lint: allow(no_slice_index) -- i is a char_indices boundary, i < line.len()
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str, lineno: usize) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("{lineno}: expected true or false, got {other}")),
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("{lineno}: expected a \"quoted string\", got {value}"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("{lineno}: expected a [\"..\", ..] array, got {value}"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let cfg = Config::parse(
            "# header\n\
             [lint]\n\
             exclude = [\"target\", \"crates/lint/tests/fixtures\"] # trailing\n\
             probe_registry = \"crates/obs/src/names.rs\"\n\
             \n\
             [rule.no_unwrap]\n\
             crates = [\"harness\", \"lint\"]\n\
             [rule.no_hash_collections]\n\
             crates = [\"*\"]\n",
        )
        .expect("parses");
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(
            cfg.probe_registry.as_deref(),
            Some("crates/obs/src/names.rs")
        );
        assert!(cfg.applies("no_unwrap", "harness"));
        assert!(!cfg.applies("no_unwrap", "sim"));
        assert!(cfg.applies("no_hash_collections", "anything"));
        assert!(!cfg.enabled("no_expect"));
    }

    #[test]
    fn unknown_rule_ids_and_keys_are_errors() {
        assert!(Config::parse("[rule.no_unrwap]\n").is_err(), "typo'd id");
        assert!(Config::parse("[lint]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("[rule.no_unwrap]\nfiles = []\n").is_err());
        assert!(Config::parse("orphan = 1\n").is_err());
        assert!(Config::parse("[weird]\n").is_err());
    }

    #[test]
    fn cross_crate_key_is_parsed_and_restricted() {
        let cfg = Config::parse(
            "[rule.no_hash_collections]\ncrates = [\"sim\"]\ncross_crate = true\n\
             [rule.no_wall_clock]\ncrates = [\"sim\"]\ncross_crate = false\n",
        )
        .expect("parses");
        assert!(cfg.cross_crate.contains("no_hash_collections"));
        assert!(!cfg.cross_crate.contains("no_wall_clock"));
        assert!(
            Config::parse("[rule.no_unwrap]\ncross_crate = true\n").is_err(),
            "unsupported rule"
        );
        assert!(Config::parse("[rule.no_wall_clock]\ncross_crate = yes\n").is_err());
    }

    #[test]
    fn empty_crate_list_disables_a_rule() {
        let cfg = Config::parse("[rule.no_unwrap]\ncrates = []\n").expect("parses");
        assert!(!cfg.enabled("no_unwrap"));
        assert!(!cfg.applies("no_unwrap", "harness"));
    }
}
