//! Phase 1 of the workspace analyzer: a symbol table over the lexed
//! token streams.
//!
//! One walk per file extracts, with no type inference and no resolver
//! beyond the token stream itself:
//!
//! * **functions** — free `fn` items and methods, with their enclosing
//!   `impl` owner (`impl Type` / `impl Trait for Type`), whether they
//!   take `&mut self`, and the token range of their body;
//! * **`use` imports** — leaf name → path segments, so rule passes can
//!   tell `std::time::Instant` from a local `Instant` enum variant;
//! * **collection-typed fields** — `HashMap`/`HashSet` appearing outside
//!   any function body (struct/enum declarations), attributed to the
//!   type being declared, so a hash map smuggled in as a field is
//!   visible to the reachability rules even though no statement names it.
//!
//! Everything is name-based and deliberately conservative; the
//! [`crate::callgraph`] module documents the over/under-approximation
//! policy the rules inherit.

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::rules::SourceFile;

/// One function (or method) definition or trait-method declaration.
#[derive(Debug)]
pub struct FnSym {
    /// Simple name (`drain_window`; raw identifiers keep their `r#`).
    pub name: String,
    /// Index of the defining file in the scanned-file slice.
    pub file: usize,
    /// Owning crate of that file.
    pub crate_name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Enclosing `impl` self-type (or trait name for declarations inside
    /// `trait … { }` blocks); `None` for free functions.
    pub owner: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Does the receiver allow mutation (`&mut self` / `mut self`)?
    pub mut_self: bool,
    /// Token-index range `[start, end]` of the body braces in the file's
    /// token stream; `None` for body-less trait declarations.
    pub body: Option<(usize, usize)>,
}

/// One `use` mapping: `leaf` is the name visible in the file, `path` the
/// segments it came from (`use std::time::Instant` → leaf `Instant`,
/// path `["std", "time", "Instant"]`; `as` aliases map the alias).
#[derive(Debug)]
pub struct Import {
    /// Name as visible in the importing file.
    pub leaf: String,
    /// Full path segments, including the final name.
    pub path: Vec<String>,
}

/// A `HashMap`/`HashSet`-typed field declared outside any fn body.
#[derive(Debug)]
pub struct CollectionField {
    /// File index.
    pub file: usize,
    /// Line of the collection ident.
    pub line: u32,
    /// The type being declared (`struct`/`enum` name), when known.
    pub owner: Option<String>,
    /// `HashMap` or `HashSet`.
    pub collection: String,
}

/// The whole-workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in file-then-token order (deterministic).
    pub fns: Vec<FnSym>,
    /// Simple name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per-file imports, indexed like the scanned-file slice.
    pub imports: Vec<Vec<Import>>,
    /// Collection-typed fields outside fn bodies.
    pub fields: Vec<CollectionField>,
}

impl SymbolTable {
    /// Builds the table over every non-exempt file (test and fixture
    /// code must not create reachability).
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            let mut imports = Vec::new();
            if !file.exempt {
                scan_file(fi, file, &mut table, &mut imports);
            }
            table.imports.push(imports);
        }
        for (i, f) in table.fns.iter().enumerate() {
            table.by_name.entry(f.name.clone()).or_default().push(i);
        }
        table
    }

    /// Does `file` import `leaf` from a path whose segments include
    /// `segment` (e.g. is this file's `Instant` the `std::time` one)?
    pub fn imports_from(&self, file: usize, leaf: &str, segment: &str) -> bool {
        self.imports.get(file).is_some_and(|imps| {
            imps.iter()
                .any(|im| im.leaf == leaf && im.path.iter().any(|s| s == segment))
        })
    }
}

/// One enclosing-context frame while scanning a file.
#[derive(Clone)]
struct ImplCtx {
    owner: Option<String>,
    trait_name: Option<String>,
    /// Token index of the context's closing brace.
    end: usize,
}

fn scan_file(fi: usize, file: &SourceFile, table: &mut SymbolTable, imports: &mut Vec<Import>) {
    let toks = &file.lexed.tokens;
    let mut ctxs: Vec<ImplCtx> = Vec::new();
    // Highest token index claimed by an fn body so far: collection idents
    // below this are expression uses, not field declarations.
    let mut body_end = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        // Drop impl/trait contexts we have walked past.
        ctxs.retain(|c| c.end >= i);
        let t = match toks.get(i) {
            Some(t) => t,
            None => break,
        };
        if t.in_test {
            i += 1;
            continue;
        }
        match &t.tok {
            Tok::Ident(k) if k == "use" => {
                i = scan_use(toks, i + 1, imports);
            }
            Tok::Ident(k) if k == "impl" => {
                if let Some(ctx) = scan_impl_header(toks, i + 1) {
                    ctxs.push(ctx);
                }
                i += 1;
            }
            Tok::Ident(k) if k == "struct" || k == "enum" || k == "union" => {
                // Track the declared type so collection-typed fields can be
                // attributed to it (tuple structs hit the `;` and push no
                // context, which is fine — they cannot hold named fields).
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    if let Some(open) = find_body_open(toks, i + 2) {
                        let end = matching_brace_tokens(toks, open).unwrap_or(toks.len() - 1);
                        ctxs.push(ImplCtx {
                            owner: Some(name.clone()),
                            trait_name: None,
                            end,
                        });
                    }
                }
                i += 1;
            }
            Tok::Ident(k) if k == "trait" => {
                // `trait Name { fn decl(...); }` — declarations inside are
                // attributed to the trait so call resolution can see them.
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    if let Some(open) = find_body_open(toks, i + 2) {
                        let end = matching_brace_tokens(toks, open).unwrap_or(toks.len() - 1);
                        ctxs.push(ImplCtx {
                            owner: Some(name.clone()),
                            trait_name: Some(name.clone()),
                            end,
                        });
                    }
                }
                i += 1;
            }
            Tok::Ident(k) if k == "fn" => {
                let sym = scan_fn(fi, file, toks, i, ctxs.last());
                if let Some(sym) = sym {
                    let next = match sym.body {
                        // Record the symbol but keep scanning inside the
                        // body: nested fns (and nothing else) re-enter.
                        Some((start, _)) => start + 1,
                        None => i + 1,
                    };
                    if let Some((_, end)) = sym.body {
                        body_end = body_end.max(end);
                    }
                    table.fns.push(sym);
                    i = next;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(name) if name == "HashMap" || name == "HashSet" => {
                // Outside any fn body: a collection-typed field or alias.
                if i > body_end {
                    table.fields.push(CollectionField {
                        file: fi,
                        line: t.line,
                        owner: ctxs.last().and_then(|c| c.owner.clone()),
                        collection: name.clone(),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses one `use …;` starting after the `use` keyword. Returns the
/// index just past the terminating `;`. Handles `a::b::{c, d as e, self}`
/// one group level deep (the workspace uses nothing deeper); unparsed
/// shapes simply contribute no imports — a documented under-approximation.
fn scan_use(toks: &[Token], mut i: usize, out: &mut Vec<Import>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(seg)) => {
                prefix.push(seg.clone());
                i += 1;
            }
            Some(Tok::Punct(':')) => i += 1,
            Some(Tok::Punct('{')) => {
                // Group: each comma-separated element is a leaf or a
                // nested path relative to `prefix`.
                i += 1;
                let mut elem: Vec<String> = Vec::new();
                let mut alias: Option<String> = None;
                let mut depth = 1usize;
                while let Some(t) = toks.get(i) {
                    match &t.tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                flush_group_elem(&prefix, &mut elem, &mut alias, out);
                                break;
                            }
                        }
                        Tok::Punct(',') if depth == 1 => {
                            flush_group_elem(&prefix, &mut elem, &mut alias, out);
                        }
                        Tok::Ident(s) if s == "as" => {
                            i += 1;
                            if let Some(Tok::Ident(a)) = toks.get(i).map(|t| &t.tok) {
                                alias = Some(a.clone());
                            }
                        }
                        Tok::Ident(s) => elem.push(s.clone()),
                        _ => {}
                    }
                    i += 1;
                }
                // Grouped import is complete: skip to the `;`.
                while let Some(t) = toks.get(i) {
                    i += 1;
                    if matches!(t.tok, Tok::Punct(';')) {
                        break;
                    }
                }
                return i;
            }
            Some(Tok::Punct(';')) | None => return i + 1,
            Some(_) => i += 1,
        }
        if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(';')) | None) {
            // Plain `use a::b::Leaf;` or `use a::b::Leaf as Alias;`.
            if let Some(pos) = prefix.iter().position(|s| s == "as") {
                let alias = prefix.get(pos + 1).cloned();
                let mut path = prefix.clone();
                path.truncate(pos);
                if let (Some(alias), false) = (alias, path.is_empty()) {
                    out.push(Import { leaf: alias, path });
                }
            } else if let Some(leaf) = prefix.last() {
                out.push(Import {
                    leaf: leaf.clone(),
                    path: prefix.clone(),
                });
            }
            return i + 1;
        }
    }
}

fn flush_group_elem(
    prefix: &[String],
    elem: &mut Vec<String>,
    alias: &mut Option<String>,
    out: &mut Vec<Import>,
) {
    let taken: Vec<String> = std::mem::take(elem);
    let alias = alias.take();
    let leaf = match (&alias, taken.last()) {
        (Some(a), _) => a.clone(),
        (None, Some(last)) if last == "self" => match prefix.last() {
            Some(p) => p.clone(),
            None => return,
        },
        (None, Some(last)) => last.clone(),
        (None, None) => return,
    };
    let mut path = prefix.to_vec();
    path.extend(taken.iter().filter(|s| *s != "self").cloned());
    out.push(Import { leaf, path });
}

/// Parses an `impl` header starting just past the `impl` keyword; returns
/// the context covering the impl body.
fn scan_impl_header(toks: &[Token], mut i: usize) -> Option<ImplCtx> {
    // Skip `<generics>`.
    if punct(toks, i) == Some('<') {
        i = skip_angle(toks, i)?;
    }
    let (first, j) = scan_type_path(toks, i)?;
    i = j;
    let (owner, trait_name) = if ident(toks, i) == Some("for") {
        let (owner, j) = scan_type_path(toks, i + 1)?;
        i = j;
        (owner, Some(first))
    } else {
        (first, None)
    };
    let open = find_body_open(toks, i)?;
    let end = matching_brace_tokens(toks, open)?;
    Some(ImplCtx {
        owner: Some(owner),
        trait_name,
        end,
    })
}

/// Reads one type path (`&'a mut gps_sim::Lane<'w>`) and returns its last
/// plain segment plus the index just past it (generics skipped).
fn scan_type_path(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    let mut last: Option<String> = None;
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('&')) | Some(Tok::Punct('*')) => i += 1,
            Some(Tok::Ident(k)) if k == "mut" || k == "dyn" => i += 1,
            Some(Tok::Ident(seg)) => {
                last = Some(seg.clone());
                i += 1;
                if punct(toks, i) == Some('<') {
                    i = skip_angle(toks, i)?;
                }
                if punct(toks, i) == Some(':') && punct(toks, i + 1) == Some(':') {
                    i += 2;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    last.map(|l| (l, i))
}

/// Skips a balanced `<…>` starting at the `<`; `->` inside (fn-pointer
/// bounds) does not close the angle. Returns the index past the `>`.
fn skip_angle(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        match t.tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if punct(toks, i.wrapping_sub(1)) == Some('-') => {}
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            // A body or statement end inside "generics" means we mis-saw
            // a comparison; bail rather than swallow the file.
            Tok::Punct('{') | Tok::Punct(';') => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// First `{` at or after `i`, before any top-level `;` (which would mean
/// a body-less item).
fn find_body_open(toks: &[Token], mut i: usize) -> Option<usize> {
    while let Some(t) = toks.get(i) {
        match t.tok {
            Tok::Punct('{') => return Some(i),
            Tok::Punct(';') => return None,
            _ => i += 1,
        }
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword.
fn scan_fn(
    fi: usize,
    file: &SourceFile,
    toks: &[Token],
    at: usize,
    ctx: Option<&ImplCtx>,
) -> Option<FnSym> {
    let name = match toks.get(at + 1).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.clone(),
        _ => return None,
    };
    let mut i = at + 2;
    if punct(toks, i) == Some('<') {
        i = skip_angle(toks, i).unwrap_or(i + 1);
    }
    // Parameter list.
    let mut mut_self = false;
    if punct(toks, i) == Some('(') {
        let mut depth = 0usize;
        let params_start = i;
        while let Some(t) = toks.get(i) {
            match t.tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // `&mut self` / `mut self` in the first few parameter tokens
        // (lifetimes are skipped by the lexer, so `&'a mut self` lexes
        // the same).
        let head: Vec<&Tok> = toks
            .iter()
            .skip(params_start + 1)
            .take(3)
            .map(|t| &t.tok)
            .collect();
        mut_self = matches!(
            head.as_slice(),
            [Tok::Punct('&'), Tok::Ident(m), Tok::Ident(s), ..]
            | [Tok::Ident(m), Tok::Ident(s), ..]
                if m == "mut" && s == "self"
        );
        i += 1;
    }
    let body = match find_body_open(toks, i) {
        Some(open) => Some((open, matching_brace_tokens(toks, open)?)),
        None => None,
    };
    Some(FnSym {
        name,
        file: fi,
        crate_name: file.crate_name.clone(),
        line: toks.get(at)?.line,
        owner: ctx.and_then(|c| c.owner.clone()),
        trait_name: ctx.and_then(|c| c.trait_name.clone()),
        mut_self,
        body,
    })
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Given `open` at a `{`, the index of its matching `}`.
fn matching_brace_tokens(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::rules::SourceFile;

    fn table_for(src: &str) -> SymbolTable {
        let mut lexed = lexer::lex(src);
        lexer::mark_test_regions(&mut lexed.tokens);
        let file = SourceFile {
            rel_path: "crates/sim/src/x.rs".to_owned(),
            crate_name: "sim".to_owned(),
            exempt: false,
            lexed,
            waivers: Vec::new(),
        };
        SymbolTable::build(std::slice::from_ref(&file))
    }

    #[test]
    fn free_fns_methods_and_trait_impls() {
        let t = table_for(
            "fn free(a: u32) {}\n\
             struct S;\n\
             impl S { fn method(&self) {} fn mutator(&mut self, x: u8) {} }\n\
             impl Send2 for S { fn send(&mut self) {} }\n\
             trait Tr { fn decl(&self); fn with_default(&self) {} }\n",
        );
        let names: Vec<(&str, Option<&str>, Option<&str>, bool)> = t
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.owner.as_deref(),
                    f.trait_name.as_deref(),
                    f.mut_self,
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, None, false),
                ("method", Some("S"), None, false),
                ("mutator", Some("S"), None, true),
                ("send", Some("S"), Some("Send2"), true),
                ("decl", Some("Tr"), Some("Tr"), false),
                ("with_default", Some("Tr"), Some("Tr"), false),
            ]
        );
        assert!(t.fns[0].body.is_some());
        assert!(t.fns[4].body.is_none(), "declaration has no body");
    }

    #[test]
    fn generic_impls_and_lifetimes_resolve_owner() {
        let t = table_for(
            "impl<'w> Pool<'w> { fn claim(&mut self) {} }\n\
             impl LaneExec for PoolExec<'_, '_> { fn drain(&mut self) {} }\n",
        );
        assert_eq!(t.fns[0].owner.as_deref(), Some("Pool"));
        assert_eq!(t.fns[1].owner.as_deref(), Some("PoolExec"));
        assert_eq!(t.fns[1].trait_name.as_deref(), Some("LaneExec"));
    }

    #[test]
    fn use_resolution_plain_grouped_and_aliased() {
        let t = table_for(
            "use std::time::Instant;\n\
             use std::sync::atomic::{AtomicUsize, Ordering as AtomOrd};\n\
             use std::collections::BTreeMap;\n\
             fn f() {}\n",
        );
        assert!(t.imports_from(0, "Instant", "time"));
        assert!(t.imports_from(0, "AtomicUsize", "atomic"));
        assert!(t.imports_from(0, "AtomOrd", "atomic"));
        assert!(!t.imports_from(0, "Ordering", "atomic"), "alias renames");
        assert!(t.imports_from(0, "BTreeMap", "collections"));
        assert!(!t.imports_from(0, "Instant", "collections"));
    }

    #[test]
    fn collection_fields_outside_bodies_are_recorded() {
        let t = table_for(
            "struct Holder { map: HashMap<u32, u32> }\n\
             fn uses() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        // Only the field, not the two in-body mentions.
        assert_eq!(t.fields.len(), 1);
        assert_eq!(t.fields[0].line, 1);
        assert_eq!(t.fields[0].collection, "HashMap");
        assert_eq!(t.fields[0].owner.as_deref(), Some("Holder"));
    }

    #[test]
    fn test_code_contributes_no_symbols() {
        let t = table_for("#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}\n");
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn raw_identifier_fns_keep_their_prefix() {
        let t = table_for("fn r#match(x: u8) {}\n");
        assert_eq!(t.fns[0].name, "r#match");
    }
}
