//! Human-readable and machine-readable rendering of lint results.

use crate::rules::Finding;

/// Timing and outcome of one analyzer pass, for `--stats`. Durations are
/// wall time and therefore *never* part of the JSON document — the CI
/// gate diffs that output, so it must be bit-stable across runs.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name (`lex`, `symbols`, or a rule id).
    pub pass: String,
    /// Wall time in microseconds.
    pub micros: u128,
    /// Unwaivered findings the pass produced.
    pub findings: usize,
    /// Findings the pass saw suppressed by waivers.
    pub waived: usize,
}

/// The outcome of one workspace lint.
#[derive(Debug)]
pub struct LintReport {
    /// Unwaivered findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by (now-used) waivers.
    pub waived: usize,
    /// Per-pass timing and counts, in execution order.
    pub stats: Vec<PassStat>,
}

impl LintReport {
    /// True when nothing needs fixing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `path:line: [rule] message` lines plus a summary, for terminals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "gps-lint: {} finding(s), {} waived, {} file(s) scanned\n",
            self.findings.len(),
            self.waived,
            self.files_scanned
        ));
        out
    }

    /// The `--stats` table: one row per pass with wall time and finding
    /// counts. Text-only by design (see [`PassStat`]).
    pub fn stats_text(&self) -> String {
        let mut out = String::from("pass                         time_us  findings  waived\n");
        let (mut total_us, mut total_f, mut total_w) = (0u128, 0usize, 0usize);
        for s in &self.stats {
            out.push_str(&format!(
                "{:<28} {:>7} {:>9} {:>7}\n",
                s.pass, s.micros, s.findings, s.waived
            ));
            total_us += s.micros;
            total_f += s.findings;
            total_w += s.waived;
        }
        out.push_str(&format!(
            "{:<28} {:>7} {:>9} {:>7}\n",
            "total", total_us, total_f, total_w
        ));
        out
    }

    /// One stable JSON document (the CI gate parses this).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"waived\":");
        out.push_str(&self.waived.to_string());
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            push_json_str(&mut out, &f.rule);
            out.push_str(",\"file\":");
            push_json_str(&mut out, &f.file);
            out.push_str(",\"line\":");
            out.push_str(&f.line.to_string());
            out.push_str(",\"message\":");
            push_json_str(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_escaping() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "no_unwrap".to_owned(),
                file: "a \"b\".rs".to_owned(),
                line: 3,
                message: "tab\there".to_owned(),
            }],
            files_scanned: 2,
            waived: 1,
            stats: vec![PassStat {
                pass: "file_rules".to_owned(),
                micros: 1234,
                findings: 1,
                waived: 1,
            }],
        };
        let json = report.to_json();
        assert!(
            !json.contains("1234") && !json.contains("stats"),
            "timings must stay out of the stable JSON: {json}"
        );
        let stats = report.stats_text();
        assert!(stats.contains("file_rules"));
        assert!(stats.starts_with("pass"));
        assert!(stats.contains("total"));
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\"a \\\"b\\\".rs\""));
        assert!(json.contains("tab\\there"));
        assert!(!report.clean());
        assert!(report.to_text().contains("a \"b\".rs:3: [no_unwrap]"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport {
            findings: Vec::new(),
            files_scanned: 0,
            waived: 0,
            stats: Vec::new(),
        };
        assert!(report.clean());
        assert_eq!(
            report.to_json(),
            "{\"version\":1,\"files_scanned\":0,\"waived\":0,\"findings\":[]}"
        );
    }
}
