//! `gps-lint` — standalone entry point for the workspace analyzer.
//!
//! ```text
//! gps-lint [--root <dir>] [--config <lint.toml>] [--json] [--stats]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gps-lint — determinism & panic-hygiene analyzer for the GPS workspace

USAGE:
    gps-lint [--root <dir>] [--config <path>] [--json] [--stats]

FLAGS:
    --root <dir>      workspace root to scan, default .
    --config <path>   lint configuration, default <root>/lint.toml
    --json            emit machine-readable JSON instead of text
    --stats           per-pass wall time and finding counts (text only;
                      with --json the table goes to stderr)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gps_lint_cli(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gps-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn gps_lint_cli(args: &[String]) -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut json = false;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().ok_or("--root requires a value")?),
            "--config" => {
                config = Some(PathBuf::from(it.next().ok_or("--config requires a value")?));
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "help" | "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    let config = config.unwrap_or_else(|| root.join("lint.toml"));
    let report = gps_lint::lint_with_config_file(&root, &config)?;
    if json {
        println!("{}", report.to_json());
        if stats {
            // stdout stays pure JSON for machine consumers.
            eprint!("{}", report.stats_text());
        }
    } else {
        print!("{}", report.to_text());
        if stats {
            print!("{}", report.stats_text());
        }
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
