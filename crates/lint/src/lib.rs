//! `gps-lint` — a zero-dependency determinism and panic-hygiene analyzer
//! for the GPS workspace.
//!
//! Every headline number this repo produces rests on `SimReport`s being
//! bit-identical across runs, hosts, probe settings and streaming depths.
//! The compiler does not enforce that property; this crate does, at the
//! source level, with a hand-rolled lexer (no syn, no clippy plugins —
//! the workspace builds offline) and a set of rule passes over every
//! `.rs` file:
//!
//! * determinism: no `HashMap`/`HashSet`, wall clocks or thread identity
//!   in report-affecting crates; no float accumulation in cycle math;
//! * panic hygiene: `unwrap`/`expect`/indexing in library code must carry
//!   a waiver explaining why they cannot fire;
//! * probe coverage: the `gps-obs` series-name registry and the real
//!   probe sites must agree in both directions.
//!
//! Scoping lives in the committed `lint.toml`; inline waivers
//! (`// gps-lint: allow(<rule>) -- <reason>`) silence individual lines
//! and are themselves errors when they stop matching anything. Run it as
//! the `gps-lint` binary, via `gps-run lint`, or in-process from tests
//! with [`lint_workspace`].

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod wsrules;

use std::path::{Path, PathBuf};
use std::time::Instant;

pub use config::Config;
pub use report::{LintReport, PassStat};
pub use rules::{Finding, RULE_IDS};

use callgraph::CallGraph;
use rules::SourceFile;
use symbols::SymbolTable;

/// Directory names never scanned regardless of configuration.
const ALWAYS_SKIPPED_DIRS: &[&str] = &["target", "results"];

/// Path components that make a file exempt from the hygiene rules (test
/// and example code may panic and hash freely).
const EXEMPT_COMPONENTS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// Lints the workspace rooted at `root` using the given configuration.
///
/// # Errors
///
/// Returns a description of I/O or configuration problems. Findings are
/// not errors — they come back inside the report.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<LintReport, String> {
    let mut stats: Vec<PassStat> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut waived = 0usize;

    // Tracks one pass: runs the body, records wall time and the
    // finding/waiver deltas it produced under `name`, and yields the
    // body's value.
    macro_rules! pass {
        ($name:expr, $body:expr) => {{
            let t0 = Instant::now();
            let f0 = findings.len();
            let w0 = waived;
            let out = $body;
            stats.push(PassStat {
                pass: $name.to_owned(),
                micros: t0.elapsed().as_micros(),
                findings: findings.len() - f0,
                waived: waived - w0,
            });
            out
        }};
    }

    let mut files: Vec<SourceFile> = Vec::new();
    let mut walk_err: Option<String> = None;
    pass!("walk_and_lex", {
        let mut paths = Vec::new();
        match walk(root, root, &cfg.exclude, &mut paths) {
            Ok(()) => {
                paths.sort();
                for rel in &paths {
                    let text = match std::fs::read_to_string(root.join(rel)) {
                        Ok(t) => t,
                        Err(e) => {
                            walk_err = Some(format!("read {rel}: {e}"));
                            break;
                        }
                    };
                    let mut lexed = lexer::lex(&text);
                    lexer::mark_test_regions(&mut lexed.tokens);
                    let exempt = rel.split('/').any(|part| EXEMPT_COMPONENTS.contains(&part));
                    let waivers = if exempt {
                        Vec::new()
                    } else {
                        rules::collect_waivers(rel, &lexed, &mut findings)
                    };
                    files.push(SourceFile {
                        rel_path: rel.clone(),
                        crate_name: crate_of(rel),
                        exempt,
                        lexed,
                        waivers,
                    });
                }
            }
            Err(e) => walk_err = Some(e),
        }
    });
    if let Some(e) = walk_err {
        return Err(e);
    }

    pass!("file_rules", {
        for file in &mut files {
            waived += rules::run_file_rules(file, cfg, &mut findings);
        }
    });

    pass!("relaxed_atomic_ordering", {
        waived += wsrules::run_relaxed_atomic(&mut files, cfg, &mut findings);
    });

    // Phase 1 of the workspace analysis: symbols and the call graph.
    // These run *before* the probe pass, which reorders `files` — the
    // symbol table carries file indices.
    let table = pass!("symbols", SymbolTable::build(&files));
    let graph = pass!("callgraph", CallGraph::build(&files, &table));

    // Phase 2: reachability rules over the graph.
    pass!("shared_mut_in_worker", {
        waived += wsrules::run_shared_mut_in_worker(&mut files, &table, &graph, cfg, &mut findings);
    });
    pass!("lane_tier_purity", {
        waived += wsrules::run_lane_tier_purity(&mut files, &table, &graph, cfg, &mut findings);
    });
    pass!("cross_crate_reachability", {
        waived += wsrules::run_cross_crate(&mut files, &table, &graph, cfg, &mut findings);
    });

    // Probe coverage: registry on one side, every probe site on the other.
    let mut probe_err: Option<String> = None;
    pass!("probe_coverage", {
        if let Some(reg_path) = &cfg.probe_registry {
            let mut sites = Vec::new();
            for file in &files {
                if !file.exempt {
                    rules::collect_probe_sites(file, &mut sites);
                }
            }
            if let Some(reg_idx) = files.iter().position(|f| &f.rel_path == reg_path) {
                let mut registry_file = files.swap_remove(reg_idx);
                let registry = rules::parse_registry(&registry_file.lexed);
                waived += rules::run_probe_rules(
                    &registry,
                    &mut registry_file,
                    &sites,
                    &mut files,
                    cfg,
                    &mut findings,
                );
                files.push(registry_file);
            } else if cfg.enabled("probe_dead_name") || cfg.enabled("probe_unregistered_name") {
                probe_err = Some(format!(
                    "probe_registry {reg_path:?} was not found among the scanned files"
                ));
            }
        }
    });
    if let Some(e) = probe_err {
        return Err(e);
    }

    rules::report_unused_waivers(&files, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        waived,
        stats,
    })
}

/// Loads `lint.toml` from `path` and lints the workspace at `root`.
///
/// # Errors
///
/// As [`lint_workspace`], plus config read/parse failures.
pub fn lint_with_config_file(root: &Path, config: &Path) -> Result<LintReport, String> {
    let text = std::fs::read_to_string(config)
        .map_err(|e| format!("read config {}: {e}", config.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", config.display()))?;
    lint_workspace(root, &cfg)
}

/// Maps a root-relative path to its owning crate name.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        _ => "gps".to_owned(),
    }
}

/// Recursively collects `.rs` files under `dir` as `/`-separated paths
/// relative to `root`, honouring the exclusion list.
fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = rel_path(root, &path);
        if exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            if name.starts_with('.') || ALWAYS_SKIPPED_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `root`-relative `/`-separated rendering of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_mapping() {
        assert_eq!(crate_of("crates/sim/src/engine.rs"), "sim");
        assert_eq!(crate_of("crates/lint/src/lib.rs"), "lint");
        assert_eq!(crate_of("src/lib.rs"), "gps");
        assert_eq!(crate_of("tests/foo.rs"), "gps");
    }
}
