//! A conservative, name-based call graph over the symbol table.
//!
//! Edges are derived purely from token shapes — no types, no trait
//! resolution — with a bias that makes the *reachability rules* sound in
//! the direction that matters for this workspace:
//!
//! * `Type::name(..)` resolves to functions whose impl owner (or trait)
//!   is `Type`; `Self::name` uses the caller's owner; a qualifier naming
//!   no known type falls back to free functions called `name`
//!   (module-qualified calls like `lexer::lex(..)`).
//! * `.name(..)` method calls edge to *every* workspace method called
//!   `name` — over-approximate, because the receiver's type is unknown —
//!   unless more than [`METHOD_AMBIGUITY_CAP`] definitions share the
//!   name, in which case the edges are dropped. Ubiquitous names
//!   (`new`, `push`, `len`) would otherwise connect everything to
//!   everything and drown the rules in false positives. This cap is the
//!   documented false-negative policy (DESIGN §14): a hazard reached
//!   *only* through a method name with 7+ workspace definitions escapes.
//! * `name(..)` plain calls edge to free functions called `name`.
//!
//! Standard-library names simply resolve to nothing, so the graph stays
//! workspace-sized.

use crate::lexer::{Tok, Token};
use crate::rules::SourceFile;
use crate::symbols::SymbolTable;

/// Method-call edges are dropped when a simple name has more workspace
/// definitions than this (see module docs).
pub const METHOD_AMBIGUITY_CAP: usize = 6;

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee fn indices (into `SymbolTable::fns`) this site may reach.
    pub callees: Vec<usize>,
    /// Line of the callee name token.
    pub line: u32,
    /// Callee name as written (`route_store`, `Fabric::transfer`).
    pub display: String,
}

/// The workspace call graph, indexed like `SymbolTable::fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per-function call sites, in token order.
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Extracts call sites from every function body.
    pub fn build(files: &[SourceFile], table: &SymbolTable) -> CallGraph {
        let mut calls = Vec::with_capacity(table.fns.len());
        for (fi, f) in table.fns.iter().enumerate() {
            let mut sites = Vec::new();
            if let (Some((start, end)), Some(file)) = (f.body, files.get(f.file)) {
                extract_calls(&file.lexed.tokens, start, end, table, fi, &mut sites);
            }
            calls.push(sites);
        }
        CallGraph { calls }
    }

    /// Breadth-first reachability from `roots`. Returns, per function,
    /// `None` (unreached) or `Some(caller)` — the function it was first
    /// reached from (roots point at themselves).
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut from: Vec<Option<usize>> = vec![None; self.calls.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if from.get(r).is_some_and(Option::is_none) {
                // gps-lint: allow(no_slice_index) -- guarded by the get() above
                from[r] = Some(r);
                queue.push(r);
            }
        }
        let mut head = 0usize;
        while let Some(&f) = queue.get(head) {
            head += 1;
            for site in self.calls.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                for &callee in &site.callees {
                    if from.get(callee).is_some_and(Option::is_none) {
                        // gps-lint: allow(no_slice_index) -- guarded by the get() above
                        from[callee] = Some(f);
                        queue.push(callee);
                    }
                }
            }
        }
        from
    }

    /// Renders the discovery chain `root → … → fn_idx` for findings, so a
    /// report-reader can see *why* a function counts as reachable.
    pub fn chain(table: &SymbolTable, from: &[Option<usize>], fn_idx: usize) -> String {
        let mut names = Vec::new();
        let mut cur = fn_idx;
        // Bounded walk: `from` parents always point at earlier BFS
        // discoveries, but cap anyway so a bug cannot loop forever.
        for _ in 0..64 {
            let Some(f) = table.fns.get(cur) else { break };
            names.push(match &f.owner {
                Some(o) => format!("{o}::{}", f.name),
                None => f.name.clone(),
            });
            match from.get(cur).copied().flatten() {
                Some(parent) if parent != cur => cur = parent,
                _ => break,
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Scans the token range `(start, end)` (exclusive of the braces) of one
/// fn body for call shapes.
fn extract_calls(
    toks: &[Token],
    start: usize,
    end: usize,
    table: &SymbolTable,
    caller: usize,
    out: &mut Vec<CallSite>,
) {
    let mut i = start + 1;
    while i < end {
        let Some(t) = toks.get(i) else { break };
        let Tok::Ident(name) = &t.tok else {
            i += 1;
            continue;
        };
        if punct(toks, i + 1) != Some('(') {
            i += 1;
            continue;
        }
        // Qualifier: `Type :: name (` → the ident two puncts back.
        let qualifier = if punct(toks, i.wrapping_sub(1)) == Some(':')
            && punct(toks, i.wrapping_sub(2)) == Some(':')
        {
            match toks.get(i.wrapping_sub(3)).map(|t| &t.tok) {
                Some(Tok::Ident(q)) => Some(q.clone()),
                _ => None,
            }
        } else {
            None
        };
        let is_method = punct(toks, i.wrapping_sub(1)) == Some('.');
        let callees = resolve(table, caller, name, qualifier.as_deref(), is_method);
        if !callees.is_empty() {
            out.push(CallSite {
                callees,
                line: t.line,
                display: match &qualifier {
                    Some(q) => format!("{q}::{name}"),
                    None => name.clone(),
                },
            });
        }
        i += 1;
    }
}

/// Maps one call shape to candidate fn indices (empty = external).
fn resolve(
    table: &SymbolTable,
    caller: usize,
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
) -> Vec<usize> {
    let Some(candidates) = table.by_name.get(name) else {
        return Vec::new();
    };
    match qualifier {
        Some(q) => {
            let owner: Option<&str> = if q == "Self" {
                table.fns.get(caller).and_then(|f| f.owner.as_deref())
            } else {
                Some(q)
            };
            let matched: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| {
                    table.fns.get(c).is_some_and(|f| {
                        f.owner.as_deref() == owner || f.trait_name.as_deref() == owner
                    })
                })
                .collect();
            if !matched.is_empty() {
                return matched;
            }
            // `module::free_fn(..)`: the qualifier names no impl type —
            // fall back to free functions with that name.
            candidates
                .iter()
                .copied()
                .filter(|&c| table.fns.get(c).is_some_and(|f| f.owner.is_none()))
                .collect()
        }
        None if is_method => {
            let methods: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| table.fns.get(c).is_some_and(|f| f.owner.is_some()))
                .collect();
            if methods.len() > METHOD_AMBIGUITY_CAP {
                Vec::new()
            } else {
                methods
            }
        }
        None => candidates
            .iter()
            .copied()
            .filter(|&c| table.fns.get(c).is_some_and(|f| f.owner.is_none()))
            .collect(),
    }
}

fn punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::rules::SourceFile;
    use crate::symbols::SymbolTable;

    fn setup(src: &str) -> (Vec<SourceFile>, SymbolTable, CallGraph) {
        let mut lexed = lexer::lex(src);
        lexer::mark_test_regions(&mut lexed.tokens);
        let files = vec![SourceFile {
            rel_path: "crates/sim/src/x.rs".to_owned(),
            crate_name: "sim".to_owned(),
            exempt: false,
            lexed,
            waivers: Vec::new(),
        }];
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        (files, table, graph)
    }

    fn idx(table: &SymbolTable, name: &str) -> usize {
        table
            .by_name
            .get(name)
            .and_then(|v| v.first())
            .copied()
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn plain_qualified_and_method_calls_resolve() {
        let (_, table, graph) = setup(
            "fn root() { helper(); Widget::build(); w.spin(); }\n\
             fn helper() {}\n\
             struct Widget;\n\
             impl Widget { fn build() {} fn spin(&self) {} }\n\
             struct Other;\n\
             impl Other { fn spin(&self) {} }\n",
        );
        let from = graph.reach(&[idx(&table, "root")]);
        for name in ["helper", "build"] {
            assert!(
                from.get(idx(&table, name)).copied().flatten().is_some(),
                "{name}"
            );
        }
        // `.spin()` is ambiguous over two impls: both are reached.
        let spins = table.by_name.get("spin").expect("spin");
        assert!(spins
            .iter()
            .all(|&s| from.get(s).copied().flatten().is_some()));
    }

    #[test]
    fn self_calls_resolve_to_the_callers_impl() {
        let (_, table, graph) = setup(
            "struct A; struct B;\n\
             impl A { fn go(&self) { Self::inner(); } fn inner() {} }\n\
             impl B { fn inner() {} }\n",
        );
        let from = graph.reach(&[idx(&table, "go")]);
        let inners = table.by_name.get("inner").expect("inner");
        let reached: Vec<bool> = inners
            .iter()
            .map(|&i| from.get(i).copied().flatten().is_some())
            .collect();
        // Only A::inner, not B::inner.
        assert_eq!(reached, vec![true, false]);
    }

    #[test]
    fn module_qualified_free_fn_falls_back() {
        let (_, table, graph) = setup("fn root() { lexer::tokenize(1); }\nfn tokenize(x: u8) {}\n");
        let from = graph.reach(&[idx(&table, "root")]);
        assert!(from
            .get(idx(&table, "tokenize"))
            .copied()
            .flatten()
            .is_some());
    }

    #[test]
    fn ambiguous_method_names_drop_edges() {
        let src = (0..8)
            .map(|n| format!("struct T{n}; impl T{n} {{ fn poke(&self) {{ hazard(); }} }}\n"))
            .collect::<String>()
            + "fn hazard() {}\nfn root(x: T0) { x.poke(); }\n";
        let (_, table, graph) = setup(&src);
        let from = graph.reach(&[idx(&table, "root")]);
        // 8 definitions of `poke` > cap: no edge, hazard unreached.
        assert!(from.get(idx(&table, "hazard")).copied().flatten().is_none());
    }

    #[test]
    fn chains_render_the_discovery_path() {
        let (_, table, graph) = setup("fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n");
        let from = graph.reach(&[idx(&table, "root")]);
        assert_eq!(
            CallGraph::chain(&table, &from, idx(&table, "leaf")),
            "root -> mid -> leaf"
        );
    }

    #[test]
    fn trait_qualified_calls_reach_impls() {
        let (_, table, graph) = setup(
            "trait Router { fn route(&self); }\n\
             struct R;\n\
             impl Router for R { fn route(&self) { leaf(); } }\n\
             fn leaf() {}\n\
             fn root(r: R) { Router::route(r); }\n",
        );
        let from = graph.reach(&[idx(&table, "root")]);
        assert!(from.get(idx(&table, "leaf")).copied().flatten().is_some());
    }
}
