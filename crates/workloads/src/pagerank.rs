//! Pagerank: "algorithm used by Google Search to rank web pages" —
//! peer-to-peer (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::graph::{GatherPattern, GraphParams, ScatterPattern};

/// Generator parameters.
///
/// A partitioned push-style Pagerank: each GPU streams its private edge
/// slice, gathers ranks from its own partition plus a boundary window of
/// its ring neighbours, and pushes contributions with **atomics** — which
/// the GPS remote write queue never coalesces, giving Pagerank its 0 %
/// hit rate in Figure 14.
pub fn params() -> GraphParams {
    GraphParams {
        name: "pagerank",
        value_bytes: 8 * 1024 * 1024,
        edge_bytes: 24 * 1024 * 1024,
        edge_lines_per_warp: 8,
        gathers_per_warp: 5,
        gather: GatherPattern::NeighborWindow(30),
        atomics_per_warp: 2,
        atomic_warp_percent: 35,
        scatter: ScatterPattern::NeighborWindow(30),
        compute_per_warp: 1400,
        warps_per_cta: 4,
    }
}

/// Builds the Pagerank workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
