//! B2rEqwp: "3D earthquake wave-propagation model simulation using 4-order
//! finite difference method" — peer-to-peer (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::stencil::StencilParams;

/// Generator parameters.
///
/// A fourth-order finite-difference wave propagation: two velocity/stress
/// sweeps per time step re-reading the same slab, with a working set sized
/// so one GPU thrashes the 6 MB L2 while a quarter partition fits — the
/// effect behind the paper's §7.1 observation that EQWP exceeds 4x speedup
/// "due to an improvement in L2 hit rate from 55% to 68% when scaling to 4
/// GPUs".
pub fn params() -> StencilParams {
    StencilParams {
        name: "eqwp",
        array_bytes: 12 * 1024 * 1024,
        private_bytes: 12 * 1024 * 1024,
        halo_lines: 1536,
        compute_per_line: 560,
        rewrite: true,
        rewrite_subchunk: 2,
        rewrite_pct: 80,
        rewrite_gap: 2,
        write_frac: (1, 1),
        imbalance_pct: 6,
        skew_lines: 256,
        sweeps_per_phase: 2,
        read_all_samples: 0,
        lines_per_warp: 16,
        warps_per_cta: 4,
    }
}

/// Builds the B2rEqwp workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
