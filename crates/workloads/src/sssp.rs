//! SSSP: "shortest path computation between every pair of vertices in a
//! graph" — many-to-many (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::graph::{GatherPattern, GraphParams, ScatterPattern};

/// Generator parameters.
///
/// Edge relaxations over an unstructured partitioned graph: gathers land
/// on a stable random *subset* of foreign pages (many-to-many — Figure 9
/// shows SSSP with a mixed 2/3/4-subscriber distribution) and distance
/// updates are atomic min-style operations scattered across partitions.
pub fn params() -> GraphParams {
    GraphParams {
        name: "sssp",
        value_bytes: 8 * 1024 * 1024,
        edge_bytes: 24 * 1024 * 1024,
        edge_lines_per_warp: 8,
        gathers_per_warp: 5,
        gather: GatherPattern::RandomSubset(45),
        atomics_per_warp: 2,
        atomic_warp_percent: 25,
        scatter: ScatterPattern::Uniform,
        compute_per_warp: 1200,
        warps_per_cta: 4,
    }
}

/// Builds the SSSP workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
