//! Vertex-partitioned irregular-application generator (Pagerank, SSSP,
//! ALS).

use std::sync::Arc;

use gps_types::rng::SmallRng;

use gps_sim::{FillProgram, KernelSpec, WarpCtx, WarpInstr, Workload, WorkloadBuilder};
use gps_types::{GpuId, LineAddr, LineRange, PageSize};

use crate::common::{mix, warp_seed, ScaleProfile};

/// Which foreign pages of the shared value array a GPU gathers from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherPattern {
    /// Reads land in the GPU's own partition plus a boundary *window* of
    /// its ring neighbours (peer-to-peer communication, e.g. Pagerank on a
    /// partitioned web graph). The value is the window size as a percent of
    /// the neighbour partition.
    NeighborWindow(u32),
    /// Each (page, gpu) pair is readable with the given percent
    /// probability (hash-derived, stable): many-to-many communication with
    /// a mixed subscriber distribution (SSSP).
    RandomSubset(u32),
    /// Every GPU reads the whole array (all-to-all: ALS factor matrices).
    All,
}

/// Where atomic updates land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterPattern {
    /// Only into the GPU's own partition (ALS: each GPU owns its factor
    /// rows).
    Own,
    /// Mostly own partition, spilling into ring-neighbour boundary windows
    /// (Pagerank rank pushes along cut edges).
    NeighborWindow(u32),
    /// Uniformly across all partitions (SSSP relaxations).
    Uniform,
}

/// Parameters of a graph-family application at paper scale.
#[derive(Debug, Clone)]
pub struct GraphParams {
    /// Application name.
    pub name: &'static str,
    /// Bytes of the shared value array (ranks / distances / factors);
    /// two ping-pong copies are allocated.
    pub value_bytes: u64,
    /// *Total* bytes of edge data; partitioned across GPUs (strong
    /// scaling).
    pub edge_bytes: u64,
    /// Contiguous private edge lines streamed per warp.
    pub edge_lines_per_warp: u32,
    /// Scattered single-line gathers from the shared array per warp.
    pub gathers_per_warp: u32,
    /// Gather placement.
    pub gather: GatherPattern,
    /// Atomic updates per atomic-issuing warp.
    pub atomics_per_warp: u32,
    /// Percent of warps that issue atomics at all (push-style codes
    /// accumulate block-locally and commit far fewer atomics than edges).
    pub atomic_warp_percent: u32,
    /// Atomic placement.
    pub scatter: ScatterPattern,
    /// Arithmetic cycles per warp.
    pub compute_per_warp: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
}

impl GraphParams {
    /// Builds the workload for `gpus` GPUs at `scale`.
    ///
    /// # Panics
    ///
    /// Panics on internal allocation failure.
    pub fn build(&self, gpus: usize, scale: ScaleProfile) -> Workload {
        self.build_paged(gpus, scale, PageSize::Standard64K)
    }

    /// Builds the workload with an explicit page size (the §7.4 page-size
    /// sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics on internal allocation failure.
    pub fn build_paged(&self, gpus: usize, scale: ScaleProfile, page_size: PageSize) -> Workload {
        assert!(gpus >= 1);
        let mut b = WorkloadBuilder::new(self.name, page_size, gpus);
        let value_bytes = scale.bytes(self.value_bytes);
        let cur = b
            .alloc_shared(format!("{}_cur", self.name), value_bytes)
            // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are non-zero
            .unwrap();
        let nxt = b
            .alloc_shared(format!("{}_nxt", self.name), value_bytes)
            // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are non-zero
            .unwrap();
        let edge_bytes_per_gpu = (scale.bytes(self.edge_bytes) / gpus as u64).max(64 * 1024);
        let edges: Vec<_> = (0..gpus)
            .map(|g| {
                b.alloc_private(format!("{}_edges{g}", self.name), edge_bytes_per_gpu)
                    // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are clamped to 64 KiB
                    .unwrap()
            })
            .collect();

        let total_lines = cur.lines();
        let part = total_lines / gpus as u64;
        let edge_lines = edges[0].lines();
        let warps_per_gpu = (edge_lines / self.edge_lines_per_warp as u64).clamp(1, 1 << 20) as u32;
        let ctas = warps_per_gpu.div_ceil(self.warps_per_cta);

        // One application iteration = a forward and a backward half-step
        // (cur -> nxt, then nxt -> cur), each ending at a global barrier,
        // so the profiling iteration observes both arrays' sharing.
        for iter in 0..scale.iterations() {
            for dir in 0..2u64 {
                let (src, dst) = if dir == 0 {
                    (cur.base().line(), nxt.base().line())
                } else {
                    (nxt.base().line(), cur.base().line())
                };
                let mut launches = Vec::new();
                for (g, edge_alloc) in edges.iter().enumerate() {
                    let p = self.clone();
                    let edge_base = edge_alloc.base().line();
                    // Fill-style: the generator appends into the engine's
                    // pooled buffer instead of allocating a vector per warp.
                    let prog = FillProgram::with_label(
                        move |ctx: WarpCtx, out: &mut Vec<WarpInstr>| {
                            p.warp_program(
                                ctx,
                                src,
                                dst,
                                total_lines,
                                part,
                                warps_per_gpu,
                                edge_base,
                                edge_lines,
                                out,
                            )
                        },
                        self.name,
                    );
                    launches.push(KernelSpec {
                        name: format!("{}_it{iter}_d{dir}_g{g}", self.name),
                        gpu: GpuId::new(g as u16),
                        cta_count: ctas,
                        warps_per_cta: self.warps_per_cta,
                        program: Arc::new(prog),
                    });
                }
                b.phase(launches);
            }
        }
        // gps-lint: allow(no_unwrap) -- the iteration loops above always push at least one phase
        b.build(2).unwrap()
    }

    /// Whether `gpu` may gather from the page-sized block containing
    /// `line` (stable across iterations so profiling predicts steady
    /// state). Offsets are relative to the shared array base.
    fn may_gather(&self, gpu: u64, gpus: u64, part: u64, line_off: u64) -> bool {
        let owner = (line_off / part).min(gpus - 1);
        if owner == gpu {
            return true;
        }
        match self.gather {
            GatherPattern::NeighborWindow(pct) => {
                if gpus <= 1 {
                    return false;
                }
                let window = (part * pct as u64 / 100).max(1);
                let within = line_off - owner * part;
                // Directional ring windows: a GPU reads the *tail* of its
                // predecessor's partition and the *head* of its
                // successor's, so each window page has exactly one remote
                // reader (Figure 9 shows Jacobi-like apps dominated by
                // 2-subscriber pages; Pagerank mixes in 3-subscriber pages
                // where scatter writes overlap).
                if owner == (gpu + 1) % gpus {
                    within < window
                } else if (owner + 1) % gpus == gpu {
                    within >= part.saturating_sub(window)
                } else {
                    false
                }
            }
            GatherPattern::RandomSubset(pct) => {
                // Page-granular (512 lines per 64 KiB page) stable hash.
                let page = line_off / 512;
                mix(page ^ (gpu << 40) ^ 0x5EED) % 100 < pct as u64
            }
            GatherPattern::All => true,
        }
    }

    fn sample_gather(&self, rng: &mut SmallRng, gpu: u64, gpus: u64, part: u64) -> u64 {
        // Rejection-sample a line this GPU is allowed to read; fall back to
        // the own partition after a few tries to bound work.
        let total = part * gpus;
        for _ in 0..8 {
            let cand = rng.gen_range(0..total);
            if self.may_gather(gpu, gpus, part, cand) {
                return cand;
            }
        }
        gpu * part + rng.gen_range(0..part)
    }

    fn sample_scatter(&self, rng: &mut SmallRng, gpu: u64, gpus: u64, part: u64) -> u64 {
        match self.scatter {
            ScatterPattern::Own => gpu * part + rng.gen_range(0..part),
            ScatterPattern::NeighborWindow(pct) => {
                if gpus > 1 && rng.gen_range(0..100) < 20 {
                    // A cut edge: push into a ring neighbour's window.
                    let neighbor = if rng.gen_bool(0.5) {
                        (gpu + 1) % gpus
                    } else {
                        (gpu + gpus - 1) % gpus
                    };
                    let window = (part * pct as u64 / 100).max(1);
                    neighbor * part + rng.gen_range(0..window)
                } else {
                    gpu * part + rng.gen_range(0..part)
                }
            }
            ScatterPattern::Uniform => {
                // Relaxations follow the edges a GPU owns: the reachable
                // vertex set matches its gather subset, keeping the
                // many-to-many subscriber mix stable across iterations.
                let total = part * gpus;
                for _ in 0..8 {
                    let cand = rng.gen_range(0..total);
                    if self.may_gather(gpu, gpus, part, cand) {
                        return cand;
                    }
                }
                gpu * part + rng.gen_range(0..part)
            }
        }
    }

    /// Appends the warp's trace into `instrs` (a pooled engine buffer —
    /// callers pass it cleared).
    #[allow(clippy::too_many_arguments)]
    fn warp_program(
        &self,
        ctx: WarpCtx,
        src: LineAddr,
        dst: LineAddr,
        _total_lines: u64,
        part: u64,
        warps_per_gpu: u32,
        edge_base: LineAddr,
        edge_lines: u64,
        instrs: &mut Vec<WarpInstr>,
    ) {
        let w = ctx.global_warp();
        if w >= warps_per_gpu {
            instrs.push(WarpInstr::Compute(1));
            return;
        }
        let gpus = ctx.gpu_count as u64;
        let g = ctx.gpu.index() as u64;
        let mut rng = SmallRng::seed_from_u64(warp_seed(
            ctx.gpu.raw(),
            ctx.cta.raw(),
            ctx.warp_in_cta,
            0x6A47,
        ));

        instrs.reserve(2 + self.gathers_per_warp as usize + self.atomics_per_warp as usize);

        // Stream this warp's slice of the private edge list.
        let e_off = (w as u64 * self.edge_lines_per_warp as u64) % edge_lines;
        let e_n = (self.edge_lines_per_warp as u64).min(edge_lines - e_off);
        instrs.push(WarpInstr::Load(LineRange::contiguous(
            edge_base.offset(e_off),
            e_n as u32,
        )));

        // Scattered gathers from the shared value array.
        for _ in 0..self.gathers_per_warp {
            let line = self.sample_gather(&mut rng, g, gpus, part);
            instrs.push(WarpInstr::Load(LineRange::single(src.offset(line))));
        }

        // +-12% per-warp compute jitter: real warps drift out of lockstep.
        let base = self.compute_per_warp.max(1);
        let jitter = (warp_seed(ctx.gpu.raw(), ctx.cta.raw(), ctx.warp_in_cta, 0x11)
            % (base as u64 / 4 + 1)) as u32;
        instrs.push(WarpInstr::Compute((base - base / 8 + jitter).max(1)));

        // Atomic scatter updates into the destination array. Only a
        // fraction of warps commit atomics (block-local accumulation).
        let commits = warp_seed(ctx.gpu.raw(), ctx.cta.raw(), ctx.warp_in_cta, 0xA70) % 100
            < self.atomic_warp_percent as u64;
        if commits {
            for _ in 0..self.atomics_per_warp {
                let line = self.sample_scatter(&mut rng, g, gpus, part);
                instrs.push(WarpInstr::Atomic(dst.offset(line)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(gather: GatherPattern, scatter: ScatterPattern) -> GraphParams {
        GraphParams {
            name: "testgraph",
            value_bytes: 4 * 1024 * 1024,
            edge_bytes: 8 * 1024 * 1024,
            edge_lines_per_warp: 8,
            gathers_per_warp: 4,
            gather,
            atomics_per_warp: 2,
            atomic_warp_percent: 100,
            scatter,
            compute_per_warp: 64,
            warps_per_cta: 4,
        }
    }

    fn shared_line_off(instr: &WarpInstr) -> Option<u64> {
        let shared_base = (1u64 << 32) >> 7;
        match instr {
            WarpInstr::Load(r) if r.len() == 1 => {
                Some(r.start().as_u64().checked_sub(shared_base)?)
            }
            WarpInstr::Atomic(l) => Some(l.as_u64().checked_sub(shared_base)?),
            _ => None,
        }
    }

    #[test]
    fn builds_and_validates() {
        let wl = params(GatherPattern::All, ScatterPattern::Own).build(4, ScaleProfile::Tiny);
        wl.validate().unwrap();
        assert_eq!(wl.phases.len(), 4, "2 iterations x 2 half-steps");
        assert_eq!(wl.phases_per_iteration, 2);
        assert_eq!(wl.phases[0].launches.len(), 4);
    }

    #[test]
    fn traces_are_deterministic() {
        let p = params(GatherPattern::RandomSubset(50), ScatterPattern::Uniform);
        let a = p.build(4, ScaleProfile::Tiny);
        let c = p.build(4, ScaleProfile::Tiny);
        let ctx = WarpCtx {
            gpu: GpuId::new(2),
            gpu_count: 4,
            cta: gps_types::CtaId::new(5),
            cta_count: a.phases[0].launches[2].cta_count,
            warp_in_cta: 1,
            warps_per_cta: 4,
        };
        assert_eq!(
            a.phases[0].launches[2].program.warp_instrs(ctx),
            c.phases[0].launches[2].program.warp_instrs(ctx),
        );
    }

    #[test]
    fn neighbor_window_keeps_gathers_near_the_ring() {
        let p = params(GatherPattern::NeighborWindow(25), ScatterPattern::Own);
        let wl = p.build(4, ScaleProfile::Small);
        let k = &wl.phases[0].launches[1]; // GPU 1
        let total = ScaleProfile::Small.bytes(p.value_bytes) / 128;
        let part = total / 4;
        for cta in 0..k.cta_count.min(50) {
            let ctx = WarpCtx {
                gpu: GpuId::new(1),
                gpu_count: 4,
                cta: gps_types::CtaId::new(cta),
                cta_count: k.cta_count,
                warp_in_cta: 0,
                warps_per_cta: 4,
            };
            for i in k.program.warp_instrs(ctx) {
                if let Some(off) = shared_line_off(&i) {
                    if off >= 2 * total {
                        continue; // second array (atomics handled below)
                    }
                    let off = off % total;
                    let owner = (off / part).min(3);
                    assert!(
                        owner == 1 || owner == 0 || owner == 2,
                        "gather outside ring: owner {owner}"
                    );
                    let within = off - owner * part;
                    if owner == 2 {
                        // Successor: head window.
                        assert!(within < part / 4 + 1, "outside window: {within}");
                    } else if owner == 0 {
                        // Predecessor: tail window.
                        assert!(within >= part - part / 4 - 1, "outside window: {within}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_pattern_reads_every_partition() {
        let p = params(GatherPattern::All, ScatterPattern::Own);
        let wl = p.build(4, ScaleProfile::Small);
        let total = ScaleProfile::Small.bytes(p.value_bytes) / 128;
        let part = total / 4;
        let k = &wl.phases[0].launches[0];
        let mut touched = [false; 4];
        for cta in 0..k.cta_count.min(200) {
            let ctx = WarpCtx {
                gpu: GpuId::new(0),
                gpu_count: 4,
                cta: gps_types::CtaId::new(cta),
                cta_count: k.cta_count,
                warp_in_cta: 2,
                warps_per_cta: 4,
            };
            for i in k.program.warp_instrs(ctx) {
                if let (WarpInstr::Load(r), Some(off)) = (&i, shared_line_off(&i)) {
                    if r.len() == 1 && off < total {
                        touched[((off / part).min(3)) as usize] = true;
                    }
                }
            }
        }
        assert!(touched.iter().all(|&t| t), "{touched:?}");
    }

    #[test]
    fn own_scatter_stays_in_partition() {
        let p = params(GatherPattern::All, ScatterPattern::Own);
        let wl = p.build(4, ScaleProfile::Small);
        let total = ScaleProfile::Small.bytes(p.value_bytes) / 128;
        let part = total / 4;
        let k = &wl.phases[0].launches[3];
        for cta in 0..k.cta_count.min(100) {
            let ctx = WarpCtx {
                gpu: GpuId::new(3),
                gpu_count: 4,
                cta: gps_types::CtaId::new(cta),
                cta_count: k.cta_count,
                warp_in_cta: 1,
                warps_per_cta: 4,
            };
            for i in k.program.warp_instrs(ctx) {
                if let WarpInstr::Atomic(l) = i {
                    let shared_base = (1u64 << 32) >> 7;
                    let off = l.as_u64() - shared_base;
                    // Atomics target the second (destination) array.
                    assert!(off >= total, "atomic in src array");
                    let off = off - total;
                    assert_eq!((off / part).min(3), 3);
                }
            }
        }
    }

    #[test]
    fn random_subset_is_stable_per_page() {
        let p = params(GatherPattern::RandomSubset(40), ScatterPattern::Uniform);
        // The same (page, gpu) decision must not flip between calls
        // (page-aligned partitions, as the real allocator produces).
        for page in 0..50u64 {
            let a = p.may_gather(2, 4, 10_240, page * 512 + 7);
            let b = p.may_gather(2, 4, 10_240, page * 512 + 400);
            assert_eq!(a, b, "page-granular stability");
        }
    }

    #[test]
    fn single_gpu_build_works() {
        let wl = params(GatherPattern::NeighborWindow(25), ScatterPattern::Uniform)
            .build(1, ScaleProfile::Tiny);
        wl.validate().unwrap();
    }
}
