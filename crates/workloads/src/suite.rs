//! The application suite index (Table 2).

use std::fmt;

use gps_sim::Workload;
use gps_types::PageSize;

use crate::common::ScaleProfile;

/// Predominant communication pattern (the Table 2 column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPattern {
    /// Boundary exchange with ring neighbours.
    PeerToPeer,
    /// Scattered communication with varying partner subsets.
    ManyToMany,
    /// Every GPU consumes every other GPU's output.
    AllToAll,
}

impl fmt::Display for CommPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommPattern::PeerToPeer => write!(f, "Peer-to-peer"),
            CommPattern::ManyToMany => write!(f, "Many-to-many"),
            CommPattern::AllToAll => write!(f, "All-to-all"),
        }
    }
}

/// One application of the suite.
pub struct AppEntry {
    /// Application name as printed in the paper's tables/figures.
    pub name: &'static str,
    /// One-line description (Table 2).
    pub description: &'static str,
    /// Predominant communication pattern (Table 2).
    pub pattern: CommPattern,
    /// Workload builder.
    pub build: fn(usize, ScaleProfile) -> Workload,
    /// Workload builder with explicit page size (§7.4 sweep).
    pub build_paged: fn(usize, ScaleProfile, PageSize) -> Workload,
}

impl fmt::Debug for AppEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppEntry")
            .field("name", &self.name)
            .field("pattern", &self.pattern)
            .finish()
    }
}

/// The eight applications of Table 2, in the paper's row order.
pub fn all() -> Vec<AppEntry> {
    vec![
        AppEntry {
            name: "jacobi",
            description:
                "Iterative algorithm that solves a diagonally dominant system of linear equations",
            pattern: CommPattern::PeerToPeer,
            build: crate::jacobi::build,
            build_paged: crate::jacobi::build_paged,
        },
        AppEntry {
            name: "pagerank",
            description:
                "Algorithm used by Google Search to rank web pages in their search engine results",
            pattern: CommPattern::PeerToPeer,
            build: crate::pagerank::build,
            build_paged: crate::pagerank::build_paged,
        },
        AppEntry {
            name: "sssp",
            description: "Shortest path computation between every pair of vertices in a graph",
            pattern: CommPattern::ManyToMany,
            build: crate::sssp::build,
            build_paged: crate::sssp::build_paged,
        },
        AppEntry {
            name: "als",
            description: "Matrix factorization algorithm",
            pattern: CommPattern::AllToAll,
            build: crate::als::build,
            build_paged: crate::als::build_paged,
        },
        AppEntry {
            name: "ct",
            description: "Model Based Iterative Reconstruction algorithm used in CT imaging",
            pattern: CommPattern::AllToAll,
            build: crate::ct::build,
            build_paged: crate::ct::build_paged,
        },
        AppEntry {
            name: "eqwp",
            description:
                "3D earthquake wave-propagation model simulation using 4-order finite difference method",
            pattern: CommPattern::PeerToPeer,
            build: crate::eqwp::build,
            build_paged: crate::eqwp::build_paged,
        },
        AppEntry {
            name: "diffusion",
            description:
                "A multi-GPU implementation of 3D Heat Equation and inviscid Burgers' Equation",
            pattern: CommPattern::PeerToPeer,
            build: crate::diffusion::build,
            build_paged: crate::diffusion::build_paged,
        },
        AppEntry {
            name: "hit",
            description:
                "Simulating Homogeneous Isotropic Turbulence by solving Navier-Stokes equations in 3D",
            pattern: CommPattern::PeerToPeer,
            build: crate::hit::build,
            build_paged: crate::hit::build_paged,
        },
    ]
}

/// Looks an application up by name (case-insensitive).
pub fn by_name(name: &str) -> Option<AppEntry> {
    all()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_apps_in_table2_order() {
        let apps = all();
        assert_eq!(apps.len(), 8);
        assert_eq!(apps[0].name, "jacobi");
        assert_eq!(apps[4].name, "ct");
        assert_eq!(apps[7].name, "hit");
    }

    #[test]
    fn every_app_builds_for_1_2_and_4_gpus() {
        for app in all() {
            for gpus in [1usize, 2, 4] {
                let wl = (app.build)(gpus, ScaleProfile::Tiny);
                wl.validate().unwrap();
                assert_eq!(wl.gpu_count, gpus, "{}", app.name);
                assert!(wl.total_warps() > 0, "{}", app.name);
                assert!(wl.shared_bytes() > 0, "{}", app.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Jacobi").is_some());
        assert!(by_name("EQWP").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn patterns_match_table2() {
        let patterns: Vec<CommPattern> = all().iter().map(|a| a.pattern).collect();
        assert_eq!(patterns[3], CommPattern::AllToAll); // ALS
        assert_eq!(patterns[4], CommPattern::AllToAll); // CT
        assert_eq!(patterns[2], CommPattern::ManyToMany); // SSSP
        assert_eq!(patterns[0], CommPattern::PeerToPeer); // Jacobi
    }
}
