//! Block-partitioned iterative stencil generator (Jacobi, B2rEqwp,
//! Diffusion, HIT, CT).

use std::sync::Arc;

use gps_sim::{FillProgram, KernelSpec, WarpCtx, WarpInstr, Workload, WorkloadBuilder};
use gps_types::{GpuId, LineAddr, LineRange, PageSize, Scope};

use crate::common::{warp_seed, ScaleProfile};

/// Parameters of a stencil-family application at paper scale.
///
/// The generator partitions a 1-D line-indexed domain across GPUs (block
/// decomposition, as the paper's applications do), ping-pongs between two
/// shared arrays (one application iteration = a forward and a backward
/// half-step, as in Listing 1), exchanges `halo_lines` with each neighbour
/// per half-step, and optionally:
///
/// * shifts partition boundaries off page alignment (`skew_lines`) so
///   boundary pages are genuinely false-shared — the §7.5 false-sharing
///   cost, and the page-thrashing amplifier for Unified Memory;
/// * gives GPU 0 a slightly larger block (`imbalance_pct`), the load
///   imbalance that keeps real codes below ideal scaling;
/// * samples lines across *all* partitions (`read_all_samples > 0`) for
///   the all-to-all applications (CT);
/// * writes each output line twice per sweep (`rewrite`) in small
///   sub-chunks — the temporal store locality behind the non-zero GPS
///   write-queue hit rates of Figure 14;
/// * restricts writes to a leading fraction of each partition's warps
///   (`write_frac`), for applications that update fewer cells than they
///   read (CT);
/// * runs multiple sweeps per phase (`sweeps_per_phase`), giving EQWP its
///   cross-kernel L2 reuse (§7.1).
#[derive(Debug, Clone)]
pub struct StencilParams {
    /// Application name.
    pub name: &'static str,
    /// Bytes per shared array (two arrays are allocated) at paper scale.
    pub array_bytes: u64,
    /// Per-GPU private bytes (coefficients, scratch) at paper scale.
    pub private_bytes: u64,
    /// Halo depth in cache lines exchanged with each neighbour.
    pub halo_lines: u64,
    /// Arithmetic cycles per output line.
    pub compute_per_line: u32,
    /// Whether each output line is written twice per sweep.
    pub rewrite: bool,
    /// When rewriting, lines per sub-chunk (store, short compute, store).
    pub rewrite_subchunk: u32,
    /// Dependent-computation cycles between the two stores of a sub-chunk.
    pub rewrite_gap: u32,
    /// Percent of sub-chunks that are actually rewritten (the rest are
    /// written once); controls the asymptotic write-queue hit rate.
    pub rewrite_pct: u32,
    /// Numerator/denominator of the leading fraction of each partition's
    /// warps that write output.
    pub write_frac: (u32, u32),
    /// Lines by which partition boundaries are shifted off page alignment.
    pub skew_lines: u64,
    /// Extra share of the domain given to GPU 0, in percent of a block.
    pub imbalance_pct: u32,
    /// Kernels launched back-to-back per GPU per phase.
    pub sweeps_per_phase: u32,
    /// Strided all-partition sample loads per warp (0 = none).
    pub read_all_samples: u32,
    /// Output lines per warp.
    pub lines_per_warp: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
}

/// Resolved partition geometry for one build.
#[derive(Debug, Clone, Copy)]
struct Partition {
    start: u64,
    end: u64,
    warps: u32,
}

impl StencilParams {
    /// Builds the workload for `gpus` GPUs at `scale`.
    ///
    /// # Panics
    ///
    /// Panics on internal allocation failure (the footprints involved are
    /// far below the 49-bit VA space).
    pub fn build(&self, gpus: usize, scale: ScaleProfile) -> Workload {
        self.build_paged(gpus, scale, PageSize::Standard64K)
    }

    /// Partition geometry: block boundaries shifted by `skew_lines` off
    /// page alignment, with GPU 0 taking `imbalance_pct` extra.
    fn partitions(&self, gpus: u64, total_lines: u64) -> Vec<Partition> {
        let base = total_lines / gpus;
        let extra = (base * self.imbalance_pct as u64 / 100).min(base / 2);
        let shift = if gpus > 1 {
            (extra + self.skew_lines).min(base / 2)
        } else {
            0
        };
        let lpw = self.lines_per_warp as u64;
        (0..gpus)
            .map(|g| {
                let start = if g == 0 { 0 } else { g * base + shift };
                let end = if g + 1 == gpus {
                    total_lines
                } else {
                    (g + 1) * base + shift
                };
                let span = end.saturating_sub(start).max(1);
                Partition {
                    start,
                    end,
                    warps: span.div_ceil(lpw) as u32,
                }
            })
            .collect()
    }

    /// Builds the workload with an explicit page size (the §7.4 page-size
    /// sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics on internal allocation failure.
    pub fn build_paged(&self, gpus: usize, scale: ScaleProfile, page_size: PageSize) -> Workload {
        assert!(gpus >= 1);
        let mut b = WorkloadBuilder::new(self.name, page_size, gpus);
        let array_bytes = scale.bytes(self.array_bytes);
        let a = b
            .alloc_shared(format!("{}_a", self.name), array_bytes)
            // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are non-zero
            .unwrap();
        let c = b
            .alloc_shared(format!("{}_b", self.name), array_bytes)
            // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are non-zero
            .unwrap();
        let privs: Vec<_> = (0..gpus)
            .map(|g| {
                b.alloc_private(
                    format!("{}_priv{g}", self.name),
                    (scale.bytes(self.private_bytes) / gpus as u64).max(64 * 1024),
                )
                // gps-lint: allow(no_unwrap) -- builder invariant: generated alloc names are unique and sizes are clamped to 64 KiB
                .unwrap()
            })
            .collect();

        let total_lines = a.lines();
        // Halo depth scales with the domain so reduced-scale builds keep
        // the paper-scale boundary-to-interior ratio.
        let halo = (self.halo_lines * array_bytes / self.array_bytes.max(1)).max(4);
        let geom = StencilParams {
            halo_lines: halo,
            ..self.clone()
        };
        let parts = geom.partitions(gpus as u64, total_lines);

        // One application iteration is a forward and a backward relaxation
        // (Listing 1 launches both `mvmul` directions inside the profiled
        // loop body), each ending at a global barrier.
        let iterations = scale.iterations();
        for iter in 0..iterations {
            for dir in 0..2u64 {
                let (src, dst) = if dir == 0 {
                    (a.base().line(), c.base().line())
                } else {
                    (c.base().line(), a.base().line())
                };
                let mut launches = Vec::new();
                for sweep in 0..self.sweeps_per_phase {
                    for g in 0..gpus {
                        let p = geom.clone();
                        let my_parts = parts.clone();
                        let priv_base = privs[g].base().line();
                        let priv_lines = privs[g].lines();
                        // Fill-style: the generator appends into the
                        // engine's pooled buffer instead of allocating a
                        // vector per warp.
                        let prog = FillProgram::with_label(
                            move |ctx: WarpCtx, out: &mut Vec<WarpInstr>| {
                                p.warp_program(
                                    ctx,
                                    src,
                                    dst,
                                    total_lines,
                                    &my_parts,
                                    priv_base,
                                    priv_lines,
                                    out,
                                )
                            },
                            self.name,
                        );
                        launches.push(KernelSpec {
                            name: format!("{}_it{iter}_d{dir}_s{sweep}_g{g}", self.name),
                            gpu: GpuId::new(g as u16),
                            cta_count: parts[g].warps.div_ceil(self.warps_per_cta),
                            warps_per_cta: self.warps_per_cta,
                            program: Arc::new(prog),
                        });
                    }
                }
                b.phase(launches);
            }
        }
        // gps-lint: allow(no_unwrap) -- the iteration loops above always push at least one phase
        b.build(2).unwrap()
    }

    /// Appends the warp's trace into `instrs` (a pooled engine buffer —
    /// callers pass it cleared).
    #[allow(clippy::too_many_arguments)]
    fn warp_program(
        &self,
        ctx: WarpCtx,
        src: LineAddr,
        dst: LineAddr,
        total_lines: u64,
        parts: &[Partition],
        priv_base: LineAddr,
        priv_lines: u64,
        instrs: &mut Vec<WarpInstr>,
    ) {
        let g = ctx.gpu.index();
        let part = parts[g];
        let w = ctx.global_warp();
        if w >= part.warps {
            instrs.push(WarpInstr::Compute(1));
            return;
        }
        let lpw = self.lines_per_warp as u64;
        let s = part.start + w as u64 * lpw;
        let chunk = lpw.min(part.end.saturating_sub(s)).max(1);

        // Private data (coefficients / geometry tables): streaming reads.
        if priv_lines > 0 {
            let off = (w as u64 * lpw) % priv_lines;
            let n = chunk.min(priv_lines - off).max(1);
            instrs.push(WarpInstr::Load(LineRange::contiguous(
                priv_base.offset(off),
                n as u32,
            )));
        }

        // Own chunk of the source array.
        instrs.push(WarpInstr::Load(LineRange::contiguous(
            src.offset(s),
            chunk as u32,
        )));

        // Halo exchange: the warps nearest each partition boundary read
        // their mirror chunk from the neighbouring partition (written by
        // the neighbour last half-step), spreading the demand across as
        // many warps as the halo is deep.
        if self.halo_lines > 0 {
            let halo_warps = (self.halo_lines.div_ceil(lpw) as u32).min(part.warps);
            if w < halo_warps && g > 0 {
                let depth = (w as u64 + 1) * lpw;
                let n = lpw
                    .min(self.halo_lines.saturating_sub(w as u64 * lpw))
                    .max(1);
                let start = part.start.saturating_sub(depth.min(part.start));
                instrs.push(WarpInstr::Load(LineRange::contiguous(
                    src.offset(start),
                    n as u32,
                )));
            }
            if w + halo_warps >= part.warps && g + 1 < parts.len() {
                let idx = (w + halo_warps - part.warps) as u64;
                let start = part.end + idx * lpw;
                let n = lpw.min(total_lines.saturating_sub(start));
                if n > 0 {
                    instrs.push(WarpInstr::Load(LineRange::contiguous(
                        src.offset(start),
                        n as u32,
                    )));
                }
            }
        }

        // All-to-all sampling (CT-style projections): one line per equal
        // segment of the whole domain, so every GPU touches every
        // partition.
        if self.read_all_samples > 0 {
            let samples = self.read_all_samples as u64;
            let stride = (total_lines / samples).max(1);
            let off = warp_seed(ctx.gpu.raw(), ctx.cta.raw(), ctx.warp_in_cta, 7) % stride;
            instrs.push(WarpInstr::Load(LineRange::new(
                src.offset(off),
                samples as u32,
                stride as u32,
            )));
        }

        // The arithmetic separating loads from stores, with a +-12%
        // per-warp jitter: real warps drift apart instead of running in
        // lockstep.
        let base_compute = self.compute_per_line.saturating_mul(chunk as u32).max(1);
        let jitter = (warp_seed(ctx.gpu.raw(), ctx.cta.raw(), ctx.warp_in_cta, 0x11)
            % (base_compute as u64 / 4 + 1)) as u32;
        instrs.push(WarpInstr::Compute(
            (base_compute - base_compute / 8 + jitter).max(1),
        ));

        // Output stores: the leading `write_frac` of the partition's warps
        // write their chunk (a contiguous updated region).
        let (num, den) = self.write_frac;
        let is_writer = (w as u64 * den.max(1) as u64) < (part.warps as u64 * num as u64);
        if is_writer {
            if self.rewrite {
                // A fraction of sub-chunks is stored, refined by a short
                // dependent computation, and stored again: the second pass
                // coalesces in the GPS remote write queue if the entry
                // survived the stores other SMs issued in between
                // (Figure 14). Sub-chunk sizes vary per warp, so reuse
                // distances span a range and the hit rate climbs gradually
                // with queue capacity.
                let seed = warp_seed(ctx.gpu.raw(), ctx.cta.raw(), ctx.warp_in_cta, 0x2E);
                let sub = ((self.rewrite_subchunk.max(1) as u64 + seed % 5).min(chunk)).max(1);
                let mut off = 0;
                let mut k = 0u64;
                while off < chunk {
                    let n = sub.min(chunk - off);
                    let r = LineRange::contiguous(dst.offset(s + off), n as u32);
                    instrs.push(WarpInstr::Store(r, Scope::Weak));
                    if (seed.rotate_left(k as u32 + 7)) % 100 < self.rewrite_pct as u64 {
                        instrs.push(WarpInstr::Compute(self.rewrite_gap.max(1)));
                        instrs.push(WarpInstr::Store(r, Scope::Weak));
                    }
                    off += n;
                    k += 1;
                }
            } else {
                instrs.push(WarpInstr::Store(
                    LineRange::contiguous(dst.offset(s), chunk as u32),
                    Scope::Weak,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StencilParams {
        StencilParams {
            name: "teststencil",
            array_bytes: 4 * 1024 * 1024,
            private_bytes: 1024 * 1024,
            halo_lines: 8,
            compute_per_line: 16,
            rewrite: true,
            rewrite_subchunk: 4,
            rewrite_gap: 32,
            rewrite_pct: 100,
            write_frac: (1, 1),
            skew_lines: 256,
            imbalance_pct: 6,
            sweeps_per_phase: 1,
            read_all_samples: 0,
            lines_per_warp: 16,
            warps_per_cta: 4,
        }
    }

    fn ctx_for(k: &KernelSpec, gpus: u32, cta: u32, warp: u32) -> WarpCtx {
        WarpCtx {
            gpu: k.gpu,
            gpu_count: gpus,
            cta: gps_types::CtaId::new(cta),
            cta_count: k.cta_count,
            warp_in_cta: warp,
            warps_per_cta: k.warps_per_cta,
        }
    }

    #[test]
    fn builds_consistent_workload() {
        let wl = params().build(4, ScaleProfile::Tiny);
        wl.validate().unwrap();
        assert_eq!(wl.gpu_count, 4);
        assert_eq!(wl.phases.len(), 2 * ScaleProfile::Tiny.iterations());
        assert_eq!(wl.phases_per_iteration, 2);
        assert_eq!(wl.phases[0].launches.len(), 4);
        assert_eq!(wl.shared_allocs().count(), 2);
    }

    #[test]
    fn partitions_cover_domain_without_overlap() {
        let p = params();
        for gpus in [1u64, 2, 4, 16] {
            let parts = p.partitions(gpus, 32768);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, 32768);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous blocks");
            }
        }
    }

    #[test]
    fn skew_makes_boundary_pages_false_shared() {
        let p = params();
        let parts = p.partitions(4, 32768);
        for part in &parts[1..] {
            assert_ne!(part.start % 512, 0, "boundary must not be page aligned");
        }
    }

    #[test]
    fn imbalance_gives_gpu0_more_lines() {
        let p = params();
        let parts = p.partitions(4, 32768);
        let len0 = parts[0].end - parts[0].start;
        let len3 = parts[3].end - parts[3].start;
        assert!(len0 > len3);
        assert!(len0 as f64 / (len3 as f64) < 1.3, "imbalance is mild");
    }

    #[test]
    fn warp_traces_are_deterministic() {
        let p = params();
        let wl1 = p.build(2, ScaleProfile::Tiny);
        let wl2 = p.build(2, ScaleProfile::Tiny);
        let k1 = &wl1.phases[0].launches[0];
        let k2 = &wl2.phases[0].launches[0];
        let ctx = ctx_for(k1, 2, 0, 1);
        assert_eq!(k1.program.warp_instrs(ctx), k2.program.warp_instrs(ctx));
    }

    #[test]
    fn boundary_warps_read_halo() {
        let p = params();
        let wl = p.build(2, ScaleProfile::Tiny);
        let k = &wl.phases[0].launches[1]; // GPU 1's kernel
        assert_eq!(k.gpu, GpuId::new(1));
        let instrs = k.program.warp_instrs(ctx_for(k, 2, 0, 0));
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, WarpInstr::Load(_)))
            .count();
        // Private + own chunk + halo from GPU 0.
        assert_eq!(loads, 3, "{instrs:?}");
    }

    #[test]
    fn interior_warps_do_not_read_halo() {
        let p = params();
        let wl = p.build(2, ScaleProfile::Tiny);
        let k = &wl.phases[0].launches[0];
        let instrs = k.program.warp_instrs(ctx_for(k, 2, 1, 1));
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, WarpInstr::Load(_)))
            .count();
        assert_eq!(loads, 2, "private + own chunk only: {instrs:?}");
    }

    #[test]
    fn rewrite_emits_paired_stores_per_subchunk() {
        let p = params();
        let wl = p.build(1, ScaleProfile::Tiny);
        let k = &wl.phases[0].launches[0];
        let stores: Vec<_> = k
            .program
            .warp_instrs(ctx_for(k, 1, 0, 0))
            .into_iter()
            .filter_map(|i| match i {
                WarpInstr::Store(r, _) => Some(r),
                _ => None,
            })
            .collect();
        assert!(stores.len() >= 2 && stores.len() % 2 == 0);
        for pair in stores.chunks(2) {
            assert_eq!(pair[0], pair[1], "sub-chunk stored twice");
        }
    }

    #[test]
    fn write_fraction_limits_writing_warps() {
        let mut p = params();
        p.write_frac = (1, 2);
        p.rewrite = false;
        let wl = p.build(1, ScaleProfile::Tiny);
        let k = &wl.phases[0].launches[0];
        let total_warps = k.cta_count * k.warps_per_cta;
        let mut writers = 0;
        for cta in 0..k.cta_count {
            for warp in 0..k.warps_per_cta {
                let has_store = k
                    .program
                    .warp_instrs(ctx_for(k, 1, cta, warp))
                    .iter()
                    .any(|i| matches!(i, WarpInstr::Store(..)));
                if has_store {
                    writers += 1;
                }
            }
        }
        let frac = writers as f64 / total_warps as f64;
        assert!((0.40..=0.60).contains(&frac), "got {frac}");
    }

    #[test]
    fn ping_pong_alternates_arrays() {
        let p = params();
        let wl = p.build(1, ScaleProfile::Tiny);
        let store_target = |phase: usize| -> u64 {
            let k = &wl.phases[phase].launches[0];
            k.program
                .warp_instrs(ctx_for(k, 1, 0, 0))
                .iter()
                .find_map(|i| match i {
                    WarpInstr::Store(r, _) => Some(r.start().as_u64()),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(store_target(0), store_target(1), "dst alternates");
        assert_eq!(store_target(0), store_target(2), "period two");
    }

    #[test]
    fn read_all_sampling_touches_every_partition() {
        let mut p = params();
        p.read_all_samples = 8;
        p.skew_lines = 0;
        p.imbalance_pct = 0;
        let wl = p.build(4, ScaleProfile::Small);
        let k = &wl.phases[0].launches[0];
        let shared_base = 1u64 << 32 >> 7;
        let total = ScaleProfile::Small.bytes(p.array_bytes) / 128;
        let part = total / 4;
        let mut partitions_touched = [false; 4];
        for i in k.program.warp_instrs(ctx_for(k, 4, 2, 3)) {
            if let WarpInstr::Load(r) = i {
                for line in r {
                    let off = line.as_u64().saturating_sub(shared_base);
                    if off < total {
                        partitions_touched[(off / part).min(3) as usize] = true;
                    }
                }
            }
        }
        assert!(
            partitions_touched.iter().all(|&t| t),
            "{partitions_touched:?}"
        );
    }
}
