//! HIT: "simulating Homogeneous Isotropic Turbulence by solving
//! Navier-Stokes equations in 3D" — peer-to-peer (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::stencil::StencilParams;

/// Generator parameters.
///
/// A pseudo-spectral turbulence step: compute-heavy per line (transforms),
/// slab decomposition with deep halos and two dependent store passes
/// (real/imaginary updates) whose rewrites coalesce in the GPS write queue
/// (Figure 14).
pub fn params() -> StencilParams {
    StencilParams {
        name: "hit",
        array_bytes: 20 * 1024 * 1024,
        private_bytes: 20 * 1024 * 1024,
        halo_lines: 2048,
        compute_per_line: 660,
        rewrite: true,
        rewrite_subchunk: 2,
        rewrite_pct: 55,
        rewrite_gap: 2,
        write_frac: (1, 1),
        imbalance_pct: 6,
        skew_lines: 256,
        sweeps_per_phase: 1,
        read_all_samples: 0,
        lines_per_warp: 16,
        warps_per_cta: 4,
    }
}

/// Builds the HIT workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
