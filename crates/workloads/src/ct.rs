//! CT: "Model Based Iterative Reconstruction algorithm used in CT imaging"
//! — all-to-all (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::stencil::StencilParams;

/// Generator parameters.
///
/// Forward/back-projection: every GPU reads projection samples across the
/// *entire* volume (all-to-all sharing — Figure 9 shows CT's shared pages
/// almost all 4-subscriber) but updates only its own voxel slab, touching
/// each output line twice per sweep. Compute per voxel is high, which is
/// why bulk-synchronous memcpy "performs well for CT" (§7.1) — the
/// broadcast is small relative to compute — and GPS mainly adds overlap.
pub fn params() -> StencilParams {
    StencilParams {
        name: "ct",
        array_bytes: 12 * 1024 * 1024,
        private_bytes: 12 * 1024 * 1024,
        halo_lines: 0,
        compute_per_line: 1600,
        rewrite: true,
        rewrite_subchunk: 2,
        rewrite_pct: 100,
        rewrite_gap: 2,
        write_frac: (1, 3),
        imbalance_pct: 6,
        skew_lines: 0,
        sweeps_per_phase: 1,
        read_all_samples: 24,
        lines_per_warp: 16,
        warps_per_cta: 4,
    }
}

/// Builds the CT workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
