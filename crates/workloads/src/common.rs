//! Shared workload-generation vocabulary.

/// Problem-size profile for a workload build.
///
/// The paper runs full applications; we provide three sizes so the same
/// generators serve unit tests (fast, debug builds) and the sweep/figure
/// harnesses (release builds):
///
/// * `Tiny` — ~1/16 of the paper-scale footprint, 2 iterations.
/// * `Small` — ~1/4 footprint, 3 iterations.
/// * `Paper` — full footprint, 1 profiling + 3 steady iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScaleProfile {
    /// Unit-test scale.
    Tiny,
    /// Bench scale.
    Small,
    /// Figure-harness scale.
    #[default]
    Paper,
}

impl ScaleProfile {
    /// Scales a paper-scale byte count down for smaller profiles (clamped
    /// to one 64 KiB page).
    pub fn bytes(self, paper_bytes: u64) -> u64 {
        let scaled = match self {
            ScaleProfile::Tiny => paper_bytes / 16,
            ScaleProfile::Small => paper_bytes / 4,
            ScaleProfile::Paper => paper_bytes,
        };
        scaled.max(64 * 1024)
    }

    /// Number of application iterations (the first one is the GPS
    /// profiling iteration).
    pub fn iterations(self) -> usize {
        match self {
            ScaleProfile::Tiny => 2,
            ScaleProfile::Small => 3,
            ScaleProfile::Paper => 4,
        }
    }

    /// Short machine-friendly name (used in result stores and CLIs).
    pub fn label(self) -> &'static str {
        match self {
            ScaleProfile::Tiny => "tiny",
            ScaleProfile::Small => "small",
            ScaleProfile::Paper => "paper",
        }
    }
}

impl std::str::FromStr for ScaleProfile {
    type Err = gps_types::GpsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(ScaleProfile::Tiny),
            "small" => Ok(ScaleProfile::Small),
            "paper" => Ok(ScaleProfile::Paper),
            other => Err(gps_types::GpsError::Parse {
                what: "scale profile",
                input: other.to_owned(),
            }),
        }
    }
}

/// Deterministic 64-bit mix used to derive per-warp pseudo-randomness from
/// warp coordinates (splitmix64 finaliser). Workload traces must be a pure
/// function of those coordinates so simulations are reproducible.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines warp coordinates into a seed.
pub fn warp_seed(gpu: u16, cta: u32, warp: u32, salt: u64) -> u64 {
    mix((gpu as u64) << 48 ^ (cta as u64) << 16 ^ warp as u64 ^ salt.wrapping_mul(0xABCD_EF01))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_monotone() {
        let paper = 16 * 1024 * 1024;
        assert!(ScaleProfile::Tiny.bytes(paper) < ScaleProfile::Small.bytes(paper));
        assert!(ScaleProfile::Small.bytes(paper) < ScaleProfile::Paper.bytes(paper));
        assert_eq!(ScaleProfile::Paper.bytes(paper), paper);
    }

    #[test]
    fn scaling_clamps_to_a_page() {
        assert_eq!(ScaleProfile::Tiny.bytes(1000), 64 * 1024);
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(1), mix(2));
        assert_ne!(warp_seed(0, 0, 0, 0), warp_seed(0, 0, 1, 0));
        assert_ne!(warp_seed(0, 0, 0, 0), warp_seed(1, 0, 0, 0));
        assert_ne!(warp_seed(0, 0, 0, 1), warp_seed(0, 0, 0, 2));
    }

    #[test]
    fn iterations_grow_with_scale() {
        assert!(ScaleProfile::Tiny.iterations() >= 2);
        assert!(ScaleProfile::Paper.iterations() > ScaleProfile::Tiny.iterations());
    }
}
