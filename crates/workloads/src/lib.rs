//! The eight-application evaluation suite of the GPS paper (Table 2).
//!
//! The paper drives its simulator with NVBit traces of real CUDA
//! applications; those traces are not redistributable, so this crate
//! generates *synthetic warp-level traces* with the same timing-relevant
//! structure: domain partitioning across GPUs, per-page sharing patterns
//! (Figure 9), plain stores vs atomics (Figure 14), stencil halo exchange
//! vs scatter/gather communication (Table 2), compute intensity and
//! iteration structure. See `DESIGN.md` for the substitution argument.
//!
//! Two parameterised generators cover the suite:
//!
//! * [`stencil`] — block-partitioned iterative grid codes with halo
//!   exchange and optional all-to-all reads (Jacobi, B2rEqwp, Diffusion,
//!   HIT, CT).
//! * [`graph`] — vertex-partitioned irregular codes with gather reads and
//!   atomic scatter updates (Pagerank, SSSP, ALS).
//!
//! Each application module exposes `build(gpus, scale) -> Workload` plus
//! its Table 2 metadata; [`suite`] enumerates them all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
mod common;
pub mod graph;
pub mod stencil;
pub mod suite;

pub mod als;
pub mod ct;
pub mod diffusion;
pub mod eqwp;
pub mod hit;
pub mod jacobi;
pub mod pagerank;
pub mod sssp;

pub use characterize::{characterize, Characterization};
pub use common::ScaleProfile;
pub use suite::{AppEntry, CommPattern};
