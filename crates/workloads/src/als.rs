//! ALS: "matrix factorization algorithm" — all-to-all (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::graph::{GatherPattern, GraphParams, ScatterPattern};

/// Generator parameters.
///
/// Alternating least squares: solving for one side's factors requires
/// gathering the *other* side's factor rows for every rated item — reads
/// span the whole shared factor array with little temporal locality
/// (Figure 9: ALS pages are almost all 4-subscriber; §7.2: RDL refetches
/// the same line repeatedly for ALS). Updates are atomic accumulations
/// into the GPU's own factor rows, so the GPS write-queue hit rate is 0 %
/// (Figure 14).
pub fn params() -> GraphParams {
    GraphParams {
        name: "als",
        value_bytes: 8 * 1024 * 1024,
        edge_bytes: 24 * 1024 * 1024,
        edge_lines_per_warp: 8,
        gathers_per_warp: 12,
        gather: GatherPattern::All,
        atomics_per_warp: 1,
        atomic_warp_percent: 30,
        scatter: ScatterPattern::Own,
        compute_per_warp: 1600,
        warps_per_cta: 4,
    }
}

/// Builds the ALS workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
