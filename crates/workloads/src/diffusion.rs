//! Diffusion: "a multi-GPU implementation of 3D Heat Equation and inviscid
//! Burgers' Equation" — peer-to-peer (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::stencil::StencilParams;

/// Generator parameters.
///
/// A 3-D heat/Burgers step: slab decomposition with deeper halos than
/// Jacobi, and two dependent update passes over each output line per sweep
/// (operator splitting), giving the GPS remote write queue real coalescing
/// opportunities (Figure 14 shows Diffusion's hit rate climbing with queue
/// size).
pub fn params() -> StencilParams {
    StencilParams {
        name: "diffusion",
        array_bytes: 32 * 1024 * 1024,
        private_bytes: 32 * 1024 * 1024,
        halo_lines: 2560,
        compute_per_line: 380,
        rewrite: true,
        rewrite_subchunk: 2,
        rewrite_pct: 65,
        rewrite_gap: 2,
        write_frac: (1, 1),
        imbalance_pct: 6,
        skew_lines: 256,
        sweeps_per_phase: 1,
        read_all_samples: 0,
        lines_per_warp: 16,
        warps_per_cta: 4,
    }
}

/// Builds the Diffusion workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
