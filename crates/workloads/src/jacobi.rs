//! Jacobi: "iterative algorithm that solves a diagonally dominant system of
//! linear equations" — predominant communication: peer-to-peer (Table 2).

use gps_sim::Workload;

use crate::common::ScaleProfile;
use crate::stencil::StencilParams;

/// Generator parameters.
///
/// A block-partitioned relaxation sweep: each GPU updates its slab and
/// exchanges one-line halos with its neighbours. Every output line is
/// written exactly once per sweep with unit stride, so all spatial store
/// locality is captured by the SM coalescer and the GPS write-queue hit
/// rate is 0 % (§7.4: "Jacobi exhibits a 0% hit rate since all spatial
/// locality is fully captured in the coalescer internal to the SM").
pub fn params() -> StencilParams {
    StencilParams {
        name: "jacobi",
        array_bytes: 16 * 1024 * 1024,
        private_bytes: 16 * 1024 * 1024,
        halo_lines: 2048,
        compute_per_line: 550,
        rewrite: false,
        rewrite_subchunk: 0,
        rewrite_pct: 0,
        rewrite_gap: 0,
        write_frac: (1, 1),
        imbalance_pct: 6,
        skew_lines: 256,
        sweeps_per_phase: 1,
        read_all_samples: 0,
        lines_per_warp: 16,
        warps_per_cta: 4,
    }
}

/// Builds the Jacobi workload.
pub fn build(gpus: usize, scale: ScaleProfile) -> Workload {
    params().build(gpus, scale)
}

/// Builds the workload with an explicit page size (§7.4 sweep).
pub fn build_paged(gpus: usize, scale: ScaleProfile, page_size: gps_types::PageSize) -> Workload {
    params().build_paged(gpus, scale, page_size)
}
