//! Static workload characterisation.
//!
//! Walks a workload's expanded warp streams (no simulation) and reports
//! the access-mix statistics that determine paradigm behaviour: footprints,
//! read/write/atomic volumes, the fraction of pages shared between GPUs and
//! with whom. The suite tests use these to pin each application to its
//! Table 2 communication pattern, and `figures table2` readers can inspect
//! them to understand the generators.

use std::collections::{BTreeMap, BTreeSet};

use gps_sim::{WarpCtx, WarpInstr, Workload};
use gps_types::{GpuId, Vpn, CACHE_LINE_BYTES};

/// Aggregate statistics of one workload's first iteration.
#[derive(Debug, Clone, Default)]
pub struct Characterization {
    /// Warp instructions per phase class (averaged over one iteration).
    pub instructions: u64,
    /// Cache lines loaded (line-accesses, counting repeats).
    pub lines_loaded: u64,
    /// Cache lines stored.
    pub lines_stored: u64,
    /// Atomic operations.
    pub atomics: u64,
    /// Arithmetic cycles issued.
    pub compute_cycles: u64,
    /// Pages of shared allocations touched by exactly one GPU.
    pub private_use_pages: u64,
    /// Pages of shared allocations touched by more than one GPU, keyed by
    /// subscriber count.
    pub shared_pages_by_degree: BTreeMap<usize, u64>,
}

impl Characterization {
    /// Fraction of write operations that are atomics.
    pub fn atomic_write_fraction(&self) -> f64 {
        let writes = self.lines_stored + self.atomics;
        if writes == 0 {
            0.0
        } else {
            self.atomics as f64 / writes as f64
        }
    }

    /// Arithmetic cycles per line accessed — the compute intensity that
    /// decides whether an app is interconnect- or compute-bound.
    pub fn compute_per_line(&self) -> f64 {
        let lines = self.lines_loaded + self.lines_stored + self.atomics;
        if lines == 0 {
            0.0
        } else {
            self.compute_cycles as f64 / lines as f64
        }
    }

    /// Total bytes touched (line accesses x 128 B).
    pub fn bytes_touched(&self) -> u64 {
        (self.lines_loaded + self.lines_stored + self.atomics) * CACHE_LINE_BYTES
    }

    /// Pages with more than one toucher.
    pub fn multi_gpu_pages(&self) -> u64 {
        self.shared_pages_by_degree.values().sum()
    }

    /// The dominant sharing degree among multi-GPU pages (2..=N), if any.
    pub fn dominant_degree(&self) -> Option<usize> {
        self.shared_pages_by_degree
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&deg, _)| deg)
    }
}

/// Characterises the *first iteration* of `workload` by walking every
/// warp's instruction stream.
///
/// ```
/// use gps_workloads::{characterize, jacobi, ScaleProfile};
///
/// let wl = jacobi::build(4, ScaleProfile::Tiny);
/// let c = characterize(&wl);
/// assert_eq!(c.atomics, 0, "stencils use plain stores");
/// assert_eq!(c.dominant_degree(), Some(2), "halo pages have 2 sharers");
/// ```
pub fn characterize(workload: &Workload) -> Characterization {
    let mut out = Characterization::default();
    let index = workload.index();
    let mut touchers: BTreeMap<Vpn, BTreeSet<GpuId>> = BTreeMap::new();

    let phases = workload
        .phases
        .iter()
        .take(workload.phases_per_iteration.max(1));
    for phase in phases {
        for k in &phase.launches {
            for cta in 0..k.cta_count {
                for warp in 0..k.warps_per_cta {
                    let ctx = WarpCtx {
                        gpu: k.gpu,
                        gpu_count: workload.gpu_count as u32,
                        cta: gps_types::CtaId::new(cta),
                        cta_count: k.cta_count,
                        warp_in_cta: warp,
                        warps_per_cta: k.warps_per_cta,
                    };
                    for instr in k.program.warp_instrs(ctx) {
                        out.instructions += 1;
                        match instr {
                            WarpInstr::Compute(c) => out.compute_cycles += c as u64,
                            WarpInstr::Load(r) => {
                                out.lines_loaded += r.len() as u64;
                                for line in r {
                                    if index.is_shared(line) {
                                        touchers
                                            .entry(line.vpn(workload.page_size))
                                            .or_default()
                                            .insert(k.gpu);
                                    }
                                }
                            }
                            WarpInstr::Store(r, _) => {
                                out.lines_stored += r.len() as u64;
                                for line in r {
                                    if index.is_shared(line) {
                                        touchers
                                            .entry(line.vpn(workload.page_size))
                                            .or_default()
                                            .insert(k.gpu);
                                    }
                                }
                            }
                            WarpInstr::Atomic(line) => {
                                out.atomics += 1;
                                if index.is_shared(line) {
                                    touchers
                                        .entry(line.vpn(workload.page_size))
                                        .or_default()
                                        .insert(k.gpu);
                                }
                            }
                            WarpInstr::Fence(_) => {}
                        }
                    }
                }
            }
        }
    }

    for set in touchers.values() {
        if set.len() <= 1 {
            out.private_use_pages += 1;
        } else {
            *out.shared_pages_by_degree.entry(set.len()).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ScaleProfile;
    use crate::suite;

    fn ch(name: &str, gpus: usize) -> Characterization {
        let app = suite::by_name(name).unwrap();
        characterize(&(app.build)(gpus, ScaleProfile::Tiny))
    }

    #[test]
    fn graph_apps_write_through_atomics() {
        for name in ["pagerank", "sssp", "als"] {
            let c = ch(name, 4);
            assert!(
                c.atomic_write_fraction() > 0.95,
                "{name}: writes should be atomics, got {}",
                c.atomic_write_fraction()
            );
        }
    }

    #[test]
    fn stencils_write_through_plain_stores() {
        for name in ["jacobi", "diffusion", "eqwp", "hit", "ct"] {
            let c = ch(name, 4);
            assert_eq!(c.atomics, 0, "{name}: stencils issue no atomics");
            assert!(c.lines_stored > 0);
        }
    }

    #[test]
    fn sharing_degrees_match_table2() {
        assert_eq!(ch("jacobi", 4).dominant_degree(), Some(2), "p2p halos");
        assert_eq!(ch("als", 4).dominant_degree(), Some(4), "all-to-all");
        assert_eq!(ch("ct", 4).dominant_degree(), Some(4), "all-to-all");
        let sssp = ch("sssp", 4);
        assert!(
            sssp.shared_pages_by_degree.len() >= 2,
            "many-to-many should mix degrees: {:?}",
            sssp.shared_pages_by_degree
        );
    }

    #[test]
    fn ct_is_the_most_compute_intense() {
        let ct = ch("ct", 4).compute_per_line();
        for name in ["jacobi", "pagerank", "sssp"] {
            assert!(
                ct > ch(name, 4).compute_per_line(),
                "CT should out-compute {name}"
            );
        }
    }

    #[test]
    fn single_gpu_builds_share_nothing() {
        for app in suite::all() {
            let c = characterize(&(app.build)(1, ScaleProfile::Tiny));
            assert_eq!(c.multi_gpu_pages(), 0, "{}: one GPU cannot share", app.name);
            assert!(c.instructions > 0);
        }
    }

    #[test]
    fn strong_scaling_keeps_total_volume_roughly_constant() {
        for app in suite::all() {
            let c1 = characterize(&(app.build)(1, ScaleProfile::Tiny));
            let c4 = characterize(&(app.build)(4, ScaleProfile::Tiny));
            let v1 = c1.bytes_touched() as f64;
            let v4 = c4.bytes_touched() as f64;
            // Partitioned work plus halo duplication: within 50 %.
            assert!(
                v4 > v1 * 0.8 && v4 < v1 * 1.5,
                "{}: 1-GPU {v1} vs 4-GPU {v4}",
                app.name
            );
        }
    }
}
