//! Randomised (deterministically seeded) tests of the address/page
//! arithmetic. Each test sweeps a few hundred generated cases from a fixed
//! seed, so failures reproduce exactly.

use gps_types::rng::SmallRng;
use gps_types::{Bandwidth, LineAddr, LineRange, PageSize, VirtAddr, CACHE_LINE_BYTES};

/// Byte -> line -> page decomposition is consistent for every page size:
/// the page of the line equals the page of the byte, and line bases
/// round-trip.
#[test]
fn address_decomposition_is_consistent() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..400 {
        let addr = rng.gen_range(0..1 << 49);
        let va = VirtAddr::new(addr);
        let line = va.line();
        assert!(line.base().as_u64() <= addr);
        assert!(addr - line.base().as_u64() < CACHE_LINE_BYTES);
        assert_eq!(va.line_offset(), addr % CACHE_LINE_BYTES);
        for size in PageSize::ALL {
            assert_eq!(line.vpn(size), va.vpn(size));
            let vpn = va.vpn(size);
            assert!(vpn.base(size).as_u64() <= addr);
            assert!(addr - vpn.base(size).as_u64() < size.bytes());
            assert_eq!(vpn.first_line(size).base(), vpn.base(size));
        }
    }
}

/// Alignment helpers: down <= addr <= up, both aligned, and idempotent.
#[test]
fn alignment_laws() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..400 {
        let addr = rng.gen_range(0..1 << 48);
        let align = 1u64 << rng.gen_range(0..21);
        let va = VirtAddr::new(addr);
        let down = va.align_down(align);
        let up = va.align_up(align);
        assert!(down <= va && va <= up);
        assert!(down.is_aligned(align));
        assert!(up.is_aligned(align));
        assert_eq!(down.align_down(align), down);
        assert_eq!(up.align_up(align), up);
        assert!(up.as_u64() - down.as_u64() <= align);
    }
}

/// LineRange iteration yields exactly `count` lines, strided.
#[test]
fn line_range_iteration() {
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..200 {
        let start = rng.gen_range(0..1 << 40);
        let count = rng.gen_range(0..200) as u32;
        let stride = rng.gen_range(1..100) as u32;
        let r = LineRange::new(LineAddr::new(start), count, stride);
        let lines: Vec<u64> = r.iter().map(|l| l.as_u64()).collect();
        assert_eq!(lines.len(), count as usize);
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(*l, start + i as u64 * stride as u64);
        }
    }
}

/// Bandwidth: serialisation time is monotone in bytes and inverse in
/// bandwidth.
#[test]
fn bandwidth_monotonicity() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..300 {
        let bytes = rng.gen_range(0..1 << 32);
        let gbps = rng.gen_range(1..2000);
        let bw = Bandwidth::gb_per_sec(gbps as f64);
        let t = bw.cycles_for_bytes(bytes);
        assert!(t >= bytes / gbps);
        assert!(bw.cycles_for_bytes(bytes + 1) >= t);
        let faster = Bandwidth::gb_per_sec(gbps as f64 * 2.0);
        assert!(faster.cycles_for_bytes(bytes) <= t);
    }
}

/// pages_for covers the request exactly.
#[test]
fn pages_for_covers() {
    let mut rng = SmallRng::seed_from_u64(5);
    for case in 0..300 {
        // Make sure the zero edge case is always in the sample.
        let bytes = if case == 0 {
            0
        } else {
            rng.gen_range(0..1 << 40)
        };
        for size in PageSize::ALL {
            let pages = size.pages_for(bytes);
            assert!(pages * size.bytes() >= bytes);
            if pages > 0 {
                assert!((pages - 1) * size.bytes() < bytes);
            } else {
                assert_eq!(bytes, 0);
            }
        }
    }
}
