//! Property-based tests of the address/page arithmetic.

use proptest::prelude::*;

use gps_types::{Bandwidth, LineAddr, LineRange, PageSize, VirtAddr, CACHE_LINE_BYTES};

proptest! {
    /// Byte -> line -> page decomposition is consistent for every page
    /// size: the page of the line equals the page of the byte, and line
    /// bases round-trip.
    #[test]
    fn address_decomposition_is_consistent(addr in 0u64..(1 << 49)) {
        let va = VirtAddr::new(addr);
        let line = va.line();
        prop_assert!(line.base().as_u64() <= addr);
        prop_assert!(addr - line.base().as_u64() < CACHE_LINE_BYTES);
        prop_assert_eq!(va.line_offset(), addr % CACHE_LINE_BYTES);
        for size in PageSize::ALL {
            prop_assert_eq!(line.vpn(size), va.vpn(size));
            let vpn = va.vpn(size);
            prop_assert!(vpn.base(size).as_u64() <= addr);
            prop_assert!(addr - vpn.base(size).as_u64() < size.bytes());
            prop_assert_eq!(vpn.first_line(size).base(), vpn.base(size));
        }
    }

    /// Alignment helpers: down <= addr <= up, both aligned, and idempotent.
    #[test]
    fn alignment_laws(addr in 0u64..(1 << 48), shift in 0u32..21) {
        let align = 1u64 << shift;
        let va = VirtAddr::new(addr);
        let down = va.align_down(align);
        let up = va.align_up(align);
        prop_assert!(down <= va && va <= up);
        prop_assert!(down.is_aligned(align));
        prop_assert!(up.is_aligned(align));
        prop_assert_eq!(down.align_down(align), down);
        prop_assert_eq!(up.align_up(align), up);
        prop_assert!(up.as_u64() - down.as_u64() <= align);
    }

    /// LineRange iteration yields exactly `count` lines, strided.
    #[test]
    fn line_range_iteration(
        start in 0u64..(1 << 40),
        count in 0u32..200,
        stride in 1u32..100,
    ) {
        let r = LineRange::new(LineAddr::new(start), count, stride);
        let lines: Vec<u64> = r.iter().map(|l| l.as_u64()).collect();
        prop_assert_eq!(lines.len(), count as usize);
        for (i, l) in lines.iter().enumerate() {
            prop_assert_eq!(*l, start + i as u64 * stride as u64);
        }
    }

    /// Bandwidth: serialisation time is monotone in bytes and inverse in
    /// bandwidth.
    #[test]
    fn bandwidth_monotonicity(bytes in 0u64..(1 << 32), gbps in 1u32..2000) {
        let bw = Bandwidth::gb_per_sec(gbps as f64);
        let t = bw.cycles_for_bytes(bytes);
        prop_assert!(t >= bytes / gbps as u64);
        prop_assert!(bw.cycles_for_bytes(bytes + 1) >= t);
        let faster = Bandwidth::gb_per_sec(gbps as f64 * 2.0);
        prop_assert!(faster.cycles_for_bytes(bytes) <= t);
    }

    /// pages_for covers the request exactly.
    #[test]
    fn pages_for_covers(bytes in 0u64..(1 << 40)) {
        for size in PageSize::ALL {
            let pages = size.pages_for(bytes);
            prop_assert!(pages * size.bytes() >= bytes);
            if pages > 0 {
                prop_assert!((pages - 1) * size.bytes() < bytes);
            } else {
                prop_assert_eq!(bytes, 0);
            }
        }
    }
}
