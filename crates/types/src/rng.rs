//! A small, dependency-free deterministic PRNG.
//!
//! The workload generators and the randomised tests need reproducible
//! pseudo-random streams, but the build must work fully offline, so the
//! workspace carries its own generator instead of depending on `rand`.
//! [`SmallRng`] is a SplitMix64 stream: statistically solid for workload
//! synthesis and test-case generation (it passes BigCrush as the seeding
//! stage of xoshiro), trivially seedable, and stable across platforms —
//! the same seed always produces the same stream, which the determinism
//! tests rely on.

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// ```
/// use gps_types::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)` via rejection-free
    /// 128-bit multiply-shift reduction (Lemire).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let u = rng.gen_range_usize(0..3);
            assert!(u < 3);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!SmallRng::seed_from_u64(0).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(0).gen_bool(1.0 + 1e-9));
    }

    #[test]
    fn values_spread_across_buckets() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} = {b}");
        }
    }
}
