//! Virtual and physical addresses at byte, cache-line and page granularity.

use std::fmt;
use std::ops::{Add, Sub};

use crate::page::PageSize;

/// Cache block size in bytes (Table 1: 128 bytes).
pub const CACHE_LINE_BYTES: u64 = 128;

/// `log2(CACHE_LINE_BYTES)`.
pub const CACHE_LINE_SHIFT: u32 = 7;

macro_rules! byte_addr {
    ($(#[$meta:meta])* $name:ident, $fmt_prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from a raw byte value.
            pub const fn new(addr: u64) -> Self {
                Self(addr)
            }

            /// Returns the raw byte address.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the cache line containing this byte address.
            pub const fn line(self) -> LineAddr {
                LineAddr(self.0 >> CACHE_LINE_SHIFT)
            }

            /// Byte offset of this address within its cache line.
            pub const fn line_offset(self) -> u64 {
                self.0 & (CACHE_LINE_BYTES - 1)
            }

            /// Byte offset of this address within its page of size `size`.
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds on overflow.
            pub const fn offset(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Checked addition, returning `None` on overflow.
            pub const fn checked_offset(self, bytes: u64) -> Option<Self> {
                match self.0.checked_add(bytes) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Aligns this address downward to a multiple of `align`.
            ///
            /// `align` must be a power of two.
            pub const fn align_down(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self(self.0 & !(align - 1))
            }

            /// Aligns this address upward to a multiple of `align`.
            ///
            /// `align` must be a power of two.
            pub const fn align_up(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self((self.0 + align - 1) & !(align - 1))
            }

            /// Whether the address is a multiple of `align` (a power of two).
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($fmt_prefix, ":{:#x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

byte_addr!(
    /// A byte address in the shared multi-GPU virtual address space.
    ///
    /// Table 1 fixes the modelled virtual address width at 49 bits; this type
    /// stores the full `u64` and the memory substrate enforces the width at
    /// allocation time.
    VirtAddr,
    "va"
);

byte_addr!(
    /// A byte address in one GPU's physical memory.
    ///
    /// Physical addresses are local to a GPU: the pair `(GpuId, PhysAddr)`
    /// names a unique DRAM location in the system. Table 1 fixes the modelled
    /// physical address width at 47 bits.
    PhysAddr,
    "pa"
);

impl VirtAddr {
    /// Returns the virtual page number of this address for pages of `size`.
    pub const fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> size.shift())
    }
}

impl PhysAddr {
    /// Returns the physical page number of this address for pages of `size`.
    pub const fn ppn(self, size: PageSize) -> Ppn {
        Ppn(self.0 >> size.shift())
    }
}

/// A cache-line index: a [`VirtAddr`] shifted right by [`CACHE_LINE_SHIFT`].
///
/// The GPS remote write queue is virtually addressed at cache-block
/// granularity (§5.2), so line indices are the unit of coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line index from its raw value (byte address >> 7).
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Raw line index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First byte address covered by this line.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << CACHE_LINE_SHIFT)
    }

    /// The virtual page containing this line for pages of `size`.
    pub const fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> (size.shift() - CACHE_LINE_SHIFT))
    }

    /// The next line.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Advances by `n` lines.
    pub const fn offset(self, n: u64) -> Self {
        Self(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl From<LineAddr> for u64 {
    fn from(v: LineAddr) -> u64 {
        v.0
    }
}

/// A virtual page number: a [`VirtAddr`] shifted right by the page shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a VPN from its raw value.
    pub const fn new(vpn: u64) -> Self {
        Self(vpn)
    }

    /// Raw page number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First byte address of the page for pages of `size`.
    pub const fn base(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 << size.shift())
    }

    /// First cache line of the page for pages of `size`.
    pub const fn first_line(self, size: PageSize) -> LineAddr {
        LineAddr(self.0 << (size.shift() - CACHE_LINE_SHIFT))
    }

    /// The next page.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Advances by `n` pages.
    pub const fn offset(self, n: u64) -> Self {
        Self(self.0 + n)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical page number: a [`PhysAddr`] shifted right by the page shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(u64);

impl Ppn {
    /// Creates a PPN from its raw value.
    pub const fn new(ppn: u64) -> Self {
        Self(ppn)
    }

    /// Raw page number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First byte address of the physical page for pages of `size`.
    pub const fn base(self, size: PageSize) -> PhysAddr {
        PhysAddr(self.0 << size.shift())
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let va = VirtAddr::new(0x1000 + 130);
        assert_eq!(va.line(), LineAddr::new((0x1000 + 130) >> 7));
        assert_eq!(va.line_offset(), 2);
        assert_eq!(va.line().base().as_u64(), 0x1080);
    }

    #[test]
    fn vpn_roundtrip_64k() {
        let va = VirtAddr::new(3 * 65536 + 42);
        let vpn = va.vpn(PageSize::Standard64K);
        assert_eq!(vpn.as_u64(), 3);
        assert_eq!(vpn.base(PageSize::Standard64K).as_u64(), 3 * 65536);
        assert_eq!(va.page_offset(PageSize::Standard64K), 42);
    }

    #[test]
    fn vpn_depends_on_page_size() {
        let va = VirtAddr::new(5 * 4096);
        assert_eq!(va.vpn(PageSize::Small4K).as_u64(), 5);
        assert_eq!(va.vpn(PageSize::Standard64K).as_u64(), 0);
        assert_eq!(va.vpn(PageSize::Huge2M).as_u64(), 0);
    }

    #[test]
    fn line_to_vpn_is_consistent_with_byte_addr() {
        let va = VirtAddr::new(0xDEAD_BEEF);
        assert_eq!(
            va.line().vpn(PageSize::Standard64K),
            va.vpn(PageSize::Standard64K)
        );
        assert_eq!(va.line().vpn(PageSize::Small4K), va.vpn(PageSize::Small4K));
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.align_down(0x1000).as_u64(), 0x1000);
        assert_eq!(va.align_up(0x1000).as_u64(), 0x2000);
        assert!(VirtAddr::new(0x2000).is_aligned(0x1000));
        assert!(!va.is_aligned(0x1000));
        assert_eq!(VirtAddr::new(0x2000).align_up(0x1000).as_u64(), 0x2000);
    }

    #[test]
    fn arithmetic_operators() {
        let a = VirtAddr::new(100);
        let b = a + 28;
        assert_eq!(b.as_u64(), 128);
        assert_eq!(b - a, 28);
        assert_eq!(a.offset(28), b);
        assert_eq!(a.checked_offset(u64::MAX), None);
    }

    #[test]
    fn first_line_of_page() {
        let vpn = Vpn::new(2);
        // 64 KiB page = 512 cache lines.
        assert_eq!(vpn.first_line(PageSize::Standard64K).as_u64(), 1024);
        assert_eq!(
            vpn.first_line(PageSize::Standard64K).base(),
            vpn.base(PageSize::Standard64K)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(0x10).to_string(), "va:0x10");
        assert_eq!(PhysAddr::new(0x10).to_string(), "pa:0x10");
        assert_eq!(LineAddr::new(0x10).to_string(), "line:0x10");
        assert_eq!(format!("{:x}", VirtAddr::new(255)), "ff");
        assert_eq!(format!("{:X}", PhysAddr::new(255)), "FF");
    }

    #[test]
    fn ppn_base() {
        assert_eq!(Ppn::new(7).base(PageSize::Standard64K).as_u64(), 7 * 65536);
    }
}
