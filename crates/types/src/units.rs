//! Time and bandwidth units for the timing models.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Model clock frequency: 1 GHz, so one [`Cycle`] is one nanosecond.
///
/// GV100 boosts to ~1.5 GHz; a 1 GHz model clock keeps cycle arithmetic and
/// nanosecond latencies interchangeable without changing any of the relative
/// results the paper reports.
pub const CYCLES_PER_SECOND: u64 = 1_000_000_000;

/// A point in simulated time, measured in model cycles (1 cycle = 1 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The far future; useful as an "unscheduled" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// Creates a time from nanoseconds (identical to cycles at 1 GHz).
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This time expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_SECOND as f64
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycle) -> Latency {
        Latency(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add<Latency> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Latency) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Latency> for Cycle {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Latency;
    fn sub(self, rhs: Cycle) -> Latency {
        Latency(self.0 - rhs.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl From<Cycle> for u64 {
    fn from(v: Cycle) -> u64 {
        v.0
    }
}

/// A duration, measured in model cycles (1 cycle = 1 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Latency(u64);

impl Latency {
    /// Zero duration.
    pub const ZERO: Latency = Latency(0);

    /// Creates a duration from cycles.
    pub const fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// Creates a duration from nanoseconds (identical to cycles at 1 GHz).
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Latency {
    type Output = Latency;
    fn mul(self, rhs: u64) -> Latency {
        Latency(self.0 * rhs)
    }
}

impl From<u64> for Latency {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// Link or memory bandwidth.
///
/// Stored as bytes per model cycle; constructed from GB/s for readability
/// (at the 1 GHz model clock, 1 GB/s = 1 byte/cycle).
///
/// ```
/// use gps_types::Bandwidth;
/// let bw = Bandwidth::gb_per_sec(16.0);
/// assert_eq!(bw.bytes_per_cycle(), 16.0);
/// // Transferring 1600 bytes takes 100 cycles at 16 B/cy.
/// assert_eq!(bw.cycles_for_bytes(1600), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Unlimited bandwidth: transfers take zero serialisation time.
    pub const INFINITE: Bandwidth = Bandwidth(f64::INFINITY);

    /// Creates a bandwidth from gigabytes per second (decimal GB).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    pub fn gb_per_sec(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive, got {gbps}");
        Self(gbps)
    }

    /// Bytes transferred per model cycle.
    pub fn bytes_per_cycle(self) -> f64 {
        self.0
    }

    /// Bandwidth in GB/s.
    pub fn as_gb_per_sec(self) -> f64 {
        self.0
    }

    /// Whether this is the infinite-bandwidth model.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Serialisation delay for `bytes` at this bandwidth, rounded up to whole
    /// cycles (zero for infinite bandwidth).
    pub fn cycles_for_bytes(self, bytes: u64) -> u64 {
        if self.is_infinite() || bytes == 0 {
            0
        } else {
            (bytes as f64 / self.0).ceil() as u64
        }
    }

    /// Scales the bandwidth by `factor` (e.g. protocol efficiency).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        Self(self.0 * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf GB/s")
        } else {
            write!(f, "{:.1} GB/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(100) + Latency::new(50);
        assert_eq!(t, Cycle::new(150));
        assert_eq!(t - Cycle::new(100), Latency::new(50));
        assert_eq!(Cycle::new(10).saturating_sub(Cycle::new(20)), Latency::ZERO);
    }

    #[test]
    fn micros_conversion() {
        assert_eq!(Latency::from_micros(25).as_u64(), 25_000);
        assert_eq!(Cycle::from_micros(1).as_u64(), 1_000);
        assert!((Cycle::from_micros(1_000_000).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_serialisation_delay() {
        let pcie3 = Bandwidth::gb_per_sec(13.0);
        assert_eq!(pcie3.cycles_for_bytes(0), 0);
        assert_eq!(pcie3.cycles_for_bytes(13), 1);
        assert_eq!(pcie3.cycles_for_bytes(130), 10);
        // 128-byte line over 13 B/cy rounds up.
        assert_eq!(pcie3.cycles_for_bytes(128), 10);
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        assert!(Bandwidth::INFINITE.is_infinite());
        assert_eq!(Bandwidth::INFINITE.cycles_for_bytes(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::gb_per_sec(0.0);
    }

    #[test]
    fn latency_display_picks_unit() {
        assert_eq!(Latency::new(999).to_string(), "999ns");
        assert_eq!(Latency::new(2_500).to_string(), "2.50us");
        assert_eq!(Latency::new(3_000_000).to_string(), "3.00ms");
    }

    #[test]
    fn scaled_bandwidth() {
        let raw = Bandwidth::gb_per_sec(16.0);
        let effective = raw.scaled(0.8);
        assert!((effective.as_gb_per_sec() - 12.8).abs() < 1e-12);
    }
}
