//! Device and execution identifiers.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr, $repr:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name($repr);

        impl $name {
            /// Creates an identifier from its raw index.
            pub const fn new(index: $repr) -> Self {
                Self(index)
            }

            /// Returns the raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw representation.
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl From<$name> for $repr {
            fn from(v: $name) -> $repr {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies one GPU in the simulated multi-GPU system.
    ///
    /// GPU indices are dense, starting at zero; a 4-GPU system uses ids
    /// `0..4`. The paper evaluates 4- and 16-GPU systems.
    GpuId,
    "gpu",
    u16
);

id_type!(
    /// Identifies a streaming multiprocessor within one GPU.
    SmId,
    "sm",
    u16
);

id_type!(
    /// Identifies a warp context within one kernel launch (global across the
    /// grid, not per-SM).
    WarpId,
    "warp",
    u32
);

id_type!(
    /// Identifies a cooperative thread array (thread block) within a grid.
    CtaId,
    "cta",
    u32
);

id_type!(
    /// Identifies a kernel launch within one simulation.
    KernelId,
    "kernel",
    u32
);

id_type!(
    /// Identifies a CUDA-style stream (in-order launch queue) on one GPU.
    StreamId,
    "stream",
    u16
);

impl GpuId {
    /// Iterates over all GPU ids in a system of `count` GPUs.
    ///
    /// ```
    /// use gps_types::GpuId;
    /// let ids: Vec<_> = GpuId::all(3).collect();
    /// assert_eq!(ids, vec![GpuId::new(0), GpuId::new(1), GpuId::new(2)]);
    /// ```
    pub fn all(count: usize) -> impl Iterator<Item = GpuId> + Clone {
        (0..count as u16).map(GpuId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix_and_index() {
        assert_eq!(GpuId::new(3).to_string(), "gpu3");
        assert_eq!(SmId::new(79).to_string(), "sm79");
        assert_eq!(WarpId::new(1024).to_string(), "warp1024");
        assert_eq!(CtaId::new(7).to_string(), "cta7");
        assert_eq!(KernelId::new(0).to_string(), "kernel0");
        assert_eq!(StreamId::new(2).to_string(), "stream2");
    }

    #[test]
    fn roundtrip_through_raw_repr() {
        let g = GpuId::new(11);
        assert_eq!(GpuId::from(u16::from(g)), g);
        assert_eq!(g.index(), 11);
        assert_eq!(g.raw(), 11);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(GpuId::new(0) < GpuId::new(1));
        assert!(WarpId::new(5) > WarpId::new(4));
    }

    #[test]
    fn all_enumerates_dense_ids() {
        assert_eq!(GpuId::all(0).count(), 0);
        let v: Vec<_> = GpuId::all(16).collect();
        assert_eq!(v.len(), 16);
        assert_eq!(v[15], GpuId::new(15));
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuId>();
        assert_send_sync::<SmId>();
        assert_send_sync::<WarpId>();
    }
}
