//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

use crate::ids::GpuId;
use crate::page::PageSize;
use crate::Vpn;

/// Errors produced by the GPS runtime, memory substrate and simulator.
///
/// Mirrors the error conditions the paper's API defines, most notably the
/// refusal to unsubscribe the *last* subscriber of a GPS region (§4: "GPS
/// ensures that there is at least one subscriber to a GPS region and will
/// return an error on attempts to unsubscribe the last subscriber").
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpsError {
    /// Attempted to unsubscribe the only remaining subscriber of a GPS page
    /// or region.
    LastSubscriber {
        /// The page whose final subscriber would have been removed.
        vpn: Vpn,
        /// The GPU that attempted (or was the target of) the unsubscription.
        gpu: GpuId,
    },
    /// Attempted to operate on a GPU id outside the simulated system.
    UnknownGpu {
        /// The offending id.
        gpu: GpuId,
        /// Number of GPUs in the system.
        system_size: usize,
    },
    /// A virtual address or range is not part of any allocation.
    Unmapped {
        /// The unmapped page.
        vpn: Vpn,
    },
    /// Physical memory on a GPU is exhausted.
    OutOfMemory {
        /// The GPU whose frame allocator is full.
        gpu: GpuId,
        /// Bytes that were requested.
        requested: u64,
    },
    /// The virtual address space is exhausted.
    OutOfAddressSpace {
        /// Bytes that were requested.
        requested: u64,
    },
    /// An allocation or advise call used an invalid range.
    InvalidRange {
        /// Human-readable reason.
        reason: String,
    },
    /// Subscription state and an operation disagree (e.g. subscribing a GPU
    /// twice with the manual API, or advising a non-GPS allocation).
    Subscription {
        /// Human-readable reason.
        reason: String,
    },
    /// Profiling API misuse (e.g. `tracking_stop` without `tracking_start`).
    Profiling {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration value is out of its supported range.
    Config {
        /// Human-readable reason.
        reason: String,
    },
    /// Failed to parse a textual value.
    Parse {
        /// What was being parsed.
        what: &'static str,
        /// The rejected input.
        input: String,
    },
    /// A page-size mismatch between an operation and the address space.
    PageSizeMismatch {
        /// Page size expected by the address space.
        expected: PageSize,
        /// Page size used by the operation.
        actual: PageSize,
    },
}

impl fmt::Display for GpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpsError::LastSubscriber { vpn, gpu } => write!(
                f,
                "cannot unsubscribe {gpu} from {vpn}: it is the last subscriber"
            ),
            GpsError::UnknownGpu { gpu, system_size } => {
                write!(f, "{gpu} does not exist in a {system_size}-GPU system")
            }
            GpsError::Unmapped { vpn } => write!(f, "{vpn} is not mapped by any allocation"),
            GpsError::OutOfMemory { gpu, requested } => {
                write!(
                    f,
                    "{gpu} is out of physical memory ({requested} bytes requested)"
                )
            }
            GpsError::OutOfAddressSpace { requested } => {
                write!(
                    f,
                    "virtual address space exhausted ({requested} bytes requested)"
                )
            }
            GpsError::InvalidRange { reason } => write!(f, "invalid range: {reason}"),
            GpsError::Subscription { reason } => write!(f, "subscription error: {reason}"),
            GpsError::Profiling { reason } => write!(f, "profiling error: {reason}"),
            GpsError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            GpsError::Parse { what, input } => {
                write!(f, "cannot parse {what} from {input:?}")
            }
            GpsError::PageSizeMismatch { expected, actual } => {
                write!(f, "page size mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for GpsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<GpsError>();
    }

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = GpsError::LastSubscriber {
            vpn: Vpn::new(4),
            gpu: GpuId::new(1),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("cannot unsubscribe"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn display_mentions_the_actors() {
        let e = GpsError::UnknownGpu {
            gpu: GpuId::new(9),
            system_size: 4,
        };
        assert_eq!(e.to_string(), "gpu9 does not exist in a 4-GPU system");
    }
}
