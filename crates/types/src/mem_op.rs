//! Memory-operation descriptors shared between the trace format and the
//! memory-policy interface.

use std::fmt;

use crate::addr::LineAddr;

/// The kind of a coalesced memory access observed by a memory policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of one cache line.
    Load,
    /// A write of one cache line (possibly partial).
    Store,
    /// A read-modify-write of part of one cache line.
    ///
    /// Atomics follow the store path through GPS (§5.1) but are *not*
    /// coalesced by the remote write queue (§7.4: Pagerank, ALS and SSSP see
    /// 0 % write-queue hit rates because they predominantly issue atomics).
    Atomic,
}

impl AccessKind {
    /// Whether this access writes memory.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Atomic)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
            AccessKind::Atomic => write!(f, "atomic"),
        }
    }
}

/// A strided run of cache lines touched by one warp-level instruction after
/// the SM coalescer.
///
/// A fully coalesced warp access (32 lanes x 4 B, unit stride) covers exactly
/// one 128-byte line: `LineRange::single(line)`. A strided or blocked access
/// covers `count` lines spaced `stride` lines apart.
///
/// ```
/// use gps_types::{LineAddr, LineRange};
/// let r = LineRange::new(LineAddr::new(100), 4, 2);
/// let lines: Vec<u64> = r.iter().map(|l| l.as_u64()).collect();
/// assert_eq!(lines, vec![100, 102, 104, 106]);
/// assert_eq!(r.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineRange {
    start: LineAddr,
    count: u32,
    stride: u32,
}

impl LineRange {
    /// Creates a strided range of `count` lines starting at `start`, spaced
    /// `stride` lines apart.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero while `count > 1`.
    pub fn new(start: LineAddr, count: u32, stride: u32) -> Self {
        assert!(
            count <= 1 || stride > 0,
            "stride must be positive for multi-line ranges"
        );
        Self {
            start,
            count,
            stride: stride.max(1),
        }
    }

    /// A single cache line.
    pub const fn single(line: LineAddr) -> Self {
        Self {
            start: line,
            count: 1,
            stride: 1,
        }
    }

    /// A contiguous run of `count` lines.
    pub const fn contiguous(start: LineAddr, count: u32) -> Self {
        Self {
            start,
            count,
            stride: 1,
        }
    }

    /// First line of the range.
    pub const fn start(self) -> LineAddr {
        self.start
    }

    /// Number of lines in the range.
    pub const fn len(self) -> u32 {
        self.count
    }

    /// Whether the range covers no lines.
    pub const fn is_empty(self) -> bool {
        self.count == 0
    }

    /// Stride between successive lines, in lines.
    pub const fn stride(self) -> u32 {
        self.stride
    }

    /// Iterates over the line addresses in the range.
    pub fn iter(self) -> Iter {
        Iter {
            next: self.start,
            remaining: self.count,
            stride: self.stride as u64,
        }
    }
}

impl IntoIterator for LineRange {
    type Item = LineAddr;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl fmt::Display for LineRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lines[{:#x}; count={}, stride={}]",
            self.start.as_u64(),
            self.count,
            self.stride
        )
    }
}

/// Iterator over the lines of a [`LineRange`].
#[derive(Debug, Clone)]
pub struct Iter {
    next: LineAddr,
    remaining: u32,
    stride: u64,
}

impl Iterator for Iter {
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.next;
        self.next = self.next.offset(self.stride);
        self.remaining -= 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_range() {
        let r = LineRange::single(LineAddr::new(7));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![LineAddr::new(7)]);
    }

    #[test]
    fn contiguous_range() {
        let r = LineRange::contiguous(LineAddr::new(10), 3);
        let v: Vec<u64> = r.iter().map(LineAddr::as_u64).collect();
        assert_eq!(v, vec![10, 11, 12]);
    }

    #[test]
    fn empty_range_iterates_nothing() {
        let r = LineRange::contiguous(LineAddr::new(0), 0);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn exact_size_hint() {
        let r = LineRange::new(LineAddr::new(0), 5, 3);
        let it = r.iter();
        assert_eq!(it.len(), 5);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_multi_line_rejected() {
        let _ = LineRange::new(LineAddr::new(0), 2, 0);
    }

    #[test]
    fn atomic_is_write() {
        assert!(AccessKind::Atomic.is_write());
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
    }
}
