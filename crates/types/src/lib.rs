//! Common vocabulary types for the GPS multi-GPU memory-management
//! reproduction.
//!
//! This crate defines the newtypes shared by every other crate in the
//! workspace: device and execution identifiers ([`GpuId`], [`SmId`],
//! [`WarpId`]), byte-addressable virtual and physical addresses
//! ([`VirtAddr`], [`PhysAddr`]) with their line- and page-granular
//! counterparts ([`LineAddr`], [`Vpn`], [`Ppn`]), the page-size menu studied
//! by the paper ([`PageSize`]), the PTX-style memory-operation scope
//! ([`Scope`]), the time/bandwidth units used by the timing models
//! ([`Cycle`], [`Bandwidth`], [`Latency`]), and the dependency-free JSON
//! codec ([`Json`]) shared by the harness result store and the telemetry
//! exporter.
//!
//! Everything here is a plain data type: cheap to copy, `Send + Sync`,
//! and totally ordered where that is meaningful, so experiment results
//! built from them can be persisted by the harness.
//!
//! # Example
//!
//! ```
//! use gps_types::{GpuId, PageSize, VirtAddr};
//!
//! let va = VirtAddr::new(0x7f00_0123_4567);
//! let page = va.vpn(PageSize::Standard64K);
//! assert_eq!(page.base(PageSize::Standard64K).as_u64() & 0xFFFF, 0);
//! let gpu = GpuId::new(2);
//! assert_eq!(gpu.index(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod ids;
pub mod json;
mod mem_op;
mod page;
pub mod rng;
mod scope;
mod units;

pub use addr::{LineAddr, PhysAddr, Ppn, VirtAddr, Vpn, CACHE_LINE_BYTES, CACHE_LINE_SHIFT};
pub use error::GpsError;
pub use ids::{CtaId, GpuId, KernelId, SmId, StreamId, WarpId};
pub use json::Json;
pub use mem_op::{AccessKind, LineRange};
pub use page::PageSize;
pub use scope::Scope;
pub use units::{Bandwidth, Cycle, Latency, CYCLES_PER_SECOND, GIB, KIB, MIB};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, GpsError>;
