//! A minimal JSON value model, emitter and parser.
//!
//! The workspace builds fully offline with no third-party crates, so it
//! carries its own ~200-line JSON implementation, shared by the harness
//! result store (JSON-lines records) and the `gps-obs` telemetry exporter
//! (Chrome trace-event files). It supports exactly what those need:
//! objects, arrays, strings with escapes, finite numbers, booleans and
//! null. Numbers are held as `f64`; every count the store persists fits in
//! the 53-bit exact-integer range with room to spare.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so emission is stable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be an exact non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value on one line (no trailing newline).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Rust's shortest-roundtrip Display; JSON has no infinities.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates are not produced by our emitter.
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a \"b\"\n\\c".into())),
            ("n".into(), Json::Num(1.25)),
            ("i".into(), Json::Num(123456789.0)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]),
            ),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn accessors_work() {
        let v = Json::parse(r#"{"k": 42, "s": "hi", "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[_]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2f64.powi(60)] {
            let text = Json::Num(f).emit();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"k\" 1}", "tru", "1 2", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn unicode_and_control_escapes() {
        let v = Json::Str("héllo \u{1} \u{1F600}".into());
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }
}
