//! Virtual-memory page sizes studied by the paper (§7.4).

use std::fmt;
use std::str::FromStr;

use crate::error::GpsError;

/// The three page sizes evaluated in the paper's page-size sensitivity study.
///
/// The paper allocates the GPS address space with 64 KiB pages by default:
/// 4 KiB pages increase TLB pressure (42 % slower) and 2 MiB pages multiply
/// false-sharing broadcast traffic (15 % slower), making 64 KiB the sweet
/// spot (§7.4).
///
/// ```
/// use gps_types::PageSize;
/// assert_eq!(PageSize::Standard64K.bytes(), 64 * 1024);
/// assert_eq!(PageSize::Standard64K.lines(), 512);
/// assert_eq!(PageSize::default(), PageSize::Standard64K);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// 4 KiB pages: least false sharing, most TLB pressure.
    Small4K,
    /// 64 KiB pages: the paper's default for the GPS address space.
    #[default]
    Standard64K,
    /// 2 MiB huge pages: best TLB coverage, most redundant broadcast traffic.
    Huge2M,
}

impl PageSize {
    /// All supported page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Small4K, PageSize::Standard64K, PageSize::Huge2M];

    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 * 1024,
            PageSize::Standard64K => 64 * 1024,
            PageSize::Huge2M => 2 * 1024 * 1024,
        }
    }

    /// `log2(bytes)`.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Small4K => 12,
            PageSize::Standard64K => 16,
            PageSize::Huge2M => 21,
        }
    }

    /// Number of 128-byte cache lines per page.
    pub const fn lines(self) -> u64 {
        self.bytes() / crate::addr::CACHE_LINE_BYTES
    }

    /// Number of pages needed to cover `bytes` (rounded up).
    ///
    /// ```
    /// use gps_types::PageSize;
    /// assert_eq!(PageSize::Standard64K.pages_for(1), 1);
    /// assert_eq!(PageSize::Standard64K.pages_for(65536), 1);
    /// assert_eq!(PageSize::Standard64K.pages_for(65537), 2);
    /// assert_eq!(PageSize::Standard64K.pages_for(0), 0);
    /// ```
    pub const fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small4K => write!(f, "4KiB"),
            PageSize::Standard64K => write!(f, "64KiB"),
            PageSize::Huge2M => write!(f, "2MiB"),
        }
    }
}

impl FromStr for PageSize {
    type Err = GpsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "4k" | "4kib" | "4kb" | "small" => Ok(PageSize::Small4K),
            "64k" | "64kib" | "64kb" | "standard" => Ok(PageSize::Standard64K),
            "2m" | "2mib" | "2mb" | "huge" => Ok(PageSize::Huge2M),
            other => Err(GpsError::Parse {
                what: "page size",
                input: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_match_shifts() {
        for size in PageSize::ALL {
            assert_eq!(size.bytes(), 1u64 << size.shift());
        }
    }

    #[test]
    fn lines_per_page() {
        assert_eq!(PageSize::Small4K.lines(), 32);
        assert_eq!(PageSize::Standard64K.lines(), 512);
        assert_eq!(PageSize::Huge2M.lines(), 16384);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!("64k".parse::<PageSize>().unwrap(), PageSize::Standard64K);
        assert_eq!("4KiB".parse::<PageSize>().unwrap(), PageSize::Small4K);
        assert_eq!("huge".parse::<PageSize>().unwrap(), PageSize::Huge2M);
        assert!("128k".parse::<PageSize>().is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for size in PageSize::ALL {
            let shown = size.to_string();
            assert_eq!(shown.parse::<PageSize>().unwrap(), size);
        }
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(PageSize::Huge2M.pages_for(2 * 1024 * 1024 + 1), 2);
        assert_eq!(PageSize::Small4K.pages_for(3 * 4096), 3);
    }
}
