//! PTX-style memory-operation scopes (§2.3 of the paper).

use std::fmt;

/// The scope of a memory access or fence, following the NVIDIA PTX memory
/// consistency model.
///
/// GPS exploits the distinction between *weak* (and narrower-than-system
/// scoped) accesses and *sys-scoped* accesses (§2.3, §3.3):
///
/// * Anything below [`Scope::Sys`] need not become visible to other GPUs
///   until the next sys-scoped synchronisation, so GPS may buffer and
///   coalesce such stores in the remote write queue.
/// * [`Scope::Sys`] accesses are inter-GPU synchronisation: they are never
///   coalesced, and a sys-scoped *store* to a GPS page collapses the page to
///   a single conventional copy (§5.3).
///
/// ```
/// use gps_types::Scope;
/// assert!(Scope::Weak.is_coalescable());
/// assert!(!Scope::Sys.is_coalescable());
/// assert!(Scope::Sys >= Scope::Gpu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Scope {
    /// A weak access: no ordering or visibility requirement beyond
    /// same-address, same-thread rules.
    #[default]
    Weak,
    /// Strong access scoped to the issuing CTA.
    Cta,
    /// Strong access scoped to the issuing GPU.
    Gpu,
    /// Strong access scoped to the whole system; used for inter-GPU
    /// synchronisation.
    Sys,
}

impl Scope {
    /// Whether a store at this scope may legally be buffered and coalesced in
    /// the GPS remote write queue before being made visible to other GPUs.
    ///
    /// Everything except `sys` scope may be coalesced (§3.3): the memory
    /// model only requires cross-GPU visibility at sys-scoped
    /// synchronisation.
    pub const fn is_coalescable(self) -> bool {
        !matches!(self, Scope::Sys)
    }

    /// Whether a fence at this scope forces the GPS remote write queue and
    /// address-translation unit to drain (§5.2: "the remote write queue unit
    /// must fully drain at synchronization points, e.g., when a sys-scoped
    /// memory fence is issued").
    pub const fn drains_write_queue(self) -> bool {
        matches!(self, Scope::Sys)
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Weak => write!(f, "weak"),
            Scope::Cta => write!(f, "cta"),
            Scope::Gpu => write!(f, "gpu"),
            Scope::Sys => write!(f, "sys"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_is_widest() {
        assert!(Scope::Weak < Scope::Cta);
        assert!(Scope::Cta < Scope::Gpu);
        assert!(Scope::Gpu < Scope::Sys);
    }

    #[test]
    fn coalescability() {
        assert!(Scope::Weak.is_coalescable());
        assert!(Scope::Cta.is_coalescable());
        assert!(Scope::Gpu.is_coalescable());
        assert!(!Scope::Sys.is_coalescable());
    }

    #[test]
    fn only_sys_drains() {
        assert!(Scope::Sys.drains_write_queue());
        assert!(!Scope::Gpu.drains_write_queue());
        assert!(!Scope::Weak.drains_write_queue());
    }

    #[test]
    fn default_is_weak() {
        assert_eq!(Scope::default(), Scope::Weak);
    }
}
