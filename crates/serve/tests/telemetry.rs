//! The serve loop's observability contract: probes see everything, the
//! report sees nothing.
//!
//! Two invariants pinned here back the `--telemetry` CLI lane:
//!
//! 1. **Bit-identity** — a probed run's [`ServeReport`] equals the
//!    unprobed run's, field for field (`ServeReport` derives `Eq`; every
//!    latency and cycle count is an integer, so "equal" means identical
//!    bits, not approximately close).
//! 2. **Histogram agreement** — the per-tenant `serve_sojourn_cycles`
//!    histograms, merged, bracket the report's exact nearest-rank
//!    percentiles from the same rank rule: the histogram quantile `q`
//!    lands in the same power-of-two bucket as the exact value `e`, with
//!    `e <= q < 2e`.

use gps_obs::{names, Histogram, ProbeHandle, Track};
use gps_serve::{serve, serve_probed, ArrivalModel, ServeConfig};

/// An open-arrival config busy enough to exercise queueing, both tenant
/// lanes, and every probe site.
fn probed_config() -> ServeConfig {
    ServeConfig {
        arrival: ArrivalModel::Open {
            mean_interarrival: 200_000,
        },
        jobs: 14,
        ..ServeConfig::default()
    }
}

#[test]
fn probed_report_is_bit_identical_to_unprobed() {
    let cfg = probed_config();
    let unprobed = serve(&cfg).unwrap();
    let handle = ProbeHandle::recording(4096, 65_536);
    let probed = serve_probed(&cfg, handle.clone()).unwrap();
    assert_eq!(
        unprobed, probed,
        "probes observe; they must never perturb the report"
    );
    assert_eq!(unprobed.to_json().emit(), probed.to_json().emit());
    // And the probe actually saw the run.
    let t = handle.finish().unwrap();
    assert!(!t.counters.is_empty());
}

#[test]
fn serve_sites_cover_every_series_and_lane() {
    let cfg = probed_config();
    let handle = ProbeHandle::recording(4096, 65_536);
    let report = serve_probed(&cfg, handle.clone()).unwrap();
    let t = handle.finish().unwrap();

    // System track: one arrival per job, gauges sampled every event.
    let arrivals = t
        .counter(Track::SYSTEM, names::SERVE_ARRIVALS)
        .expect("arrival counter");
    assert_eq!(arrivals.total() as u64, cfg.jobs);
    for gauge in [
        names::SERVE_ACTIVE_JOBS,
        names::SERVE_QUEUE_DEPTH,
        names::SERVE_FREE_SLOTS,
    ] {
        assert!(t.gauge(Track::SYSTEM, gauge).is_some(), "{gauge} sampled");
    }

    // Per-slot completions sum to the job count.
    let completions: f64 = (0..cfg.slots as usize)
        .filter_map(|slot| t.counter(Track::gpu(slot), names::SERVE_COMPLETIONS))
        .map(|s| s.total())
        .sum();
    assert_eq!(completions as u64, cfg.jobs);

    // Tenant lanes: an in-flight gauge and a sojourn histogram per mix
    // position, histogram counts matching the per-app completion tally.
    for (idx, (app, jobs)) in report.per_app_jobs.iter().enumerate() {
        let lane = Track::tenant(idx);
        assert!(
            t.gauge(lane, names::SERVE_TENANT_IN_FLIGHT).is_some(),
            "{app}: in-flight gauge"
        );
        let hist = t
            .hist(lane, names::SERVE_SOJOURN_CYCLES)
            .expect("sojourn histogram");
        assert_eq!(hist.count(), *jobs, "{app}: one sample per completion");
    }

    // One "job" span per job, tenant-laned, durations matching the exact
    // sojourn multiset.
    let mut durations: Vec<u64> = t.spans_of("job").map(|s| s.duration()).collect();
    durations.sort_unstable();
    assert_eq!(durations, report.latencies);
}

#[test]
fn merged_histograms_agree_with_exact_percentiles() {
    let cfg = probed_config();
    let handle = ProbeHandle::recording(4096, 65_536);
    let report = serve_probed(&cfg, handle.clone()).unwrap();
    let t = handle.finish().unwrap();

    let mut merged = Histogram::new();
    for (idx, _) in cfg.mix.iter().enumerate() {
        merged.merge(
            t.hist(Track::tenant(idx), names::SERVE_SOJOURN_CYCLES)
                .expect("sojourn histogram"),
        );
    }
    assert_eq!(merged.count(), cfg.jobs);
    assert_eq!(merged.min(), report.latencies.first().copied());
    assert_eq!(merged.max(), report.latencies.last().copied());
    assert_eq!(
        merged.sum(),
        report
            .latencies
            .iter()
            .map(|&l| u128::from(l))
            .sum::<u128>()
    );

    // Same nearest-rank rule, so the histogram's bucket upper bound
    // brackets the exact percentile within its power-of-two bucket.
    for p in [50u32, 95, 99] {
        let exact = report.latency_percentile(p);
        let coarse = merged.percentile(p);
        assert!(exact <= coarse, "p{p}: exact {exact} <= hist {coarse}");
        assert_eq!(
            Histogram::bucket_of(exact),
            Histogram::bucket_of(coarse),
            "p{p}: same power-of-two bucket"
        );
    }
}
