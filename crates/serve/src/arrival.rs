//! The job arrival process: open (Poisson-like) or closed (fixed
//! concurrency), both fully determined by the seed.

use gps_types::rng::SmallRng;

/// How jobs enter the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// An open system: jobs arrive on their own schedule regardless of
    /// completions, with exponential interarrival gaps of the given mean
    /// (in model cycles; 1 cycle = 1 ns). This is the Poisson arrival
    /// process of open-loop load generators — queueing appears as soon as
    /// the offered rate approaches capacity.
    Open {
        /// Mean interarrival gap in cycles. The offered rate in jobs per
        /// second is `CYCLES_PER_SECOND / mean_interarrival`.
        mean_interarrival: u64,
    },
    /// A closed system: exactly `concurrency` jobs are kept in flight
    /// (until the job budget runs out); each completion immediately admits
    /// the next job. This is the think-time-free closed loop of classic
    /// capacity benchmarks — it measures sustainable throughput without
    /// unbounded queueing.
    Closed {
        /// Jobs kept in flight. Must not exceed the slot count.
        concurrency: u32,
    },
}

impl ArrivalModel {
    /// A short human-readable label (`open(mean=…)` / `closed(c=…)`).
    pub fn label(&self) -> String {
        match self {
            ArrivalModel::Open { mean_interarrival } => {
                format!("open(mean={mean_interarrival})")
            }
            ArrivalModel::Closed { concurrency } => format!("closed(c={concurrency})"),
        }
    }
}

/// One exponential interarrival gap with the given mean, in whole cycles,
/// floored at 1 so simulated time always advances.
///
/// Uses inverse-transform sampling over the RNG's `[0, 1)` output:
/// `-ln(1 - u) * mean`. `1 - u` lies in `(0, 1]`, so the draw is finite
/// and non-negative; the result is converted to integer cycles once (no
/// float accumulates across draws — arrival times advance in `u64`).
pub fn exponential_gap(rng: &mut SmallRng, mean: u64) -> u64 {
    let u = rng.gen_f64();
    let gap = -(1.0 - u).ln() * mean as f64;
    (gap as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_deterministic_and_positive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let g = exponential_gap(&mut a, 500);
            assert_eq!(g, exponential_gap(&mut b, 500));
            assert!(g >= 1);
        }
    }

    #[test]
    fn gap_mean_tracks_parameter() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| exponential_gap(&mut rng, 1_000)).sum();
        let mean = total / n;
        assert!((800..1200).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn labels_render_both_modes() {
        assert_eq!(
            ArrivalModel::Open {
                mean_interarrival: 250
            }
            .label(),
            "open(mean=250)"
        );
        assert_eq!(
            ArrivalModel::Closed { concurrency: 4 }.label(),
            "closed(c=4)"
        );
    }
}
