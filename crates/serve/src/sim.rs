//! The serving event loop.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use gps_obs::{names, ProbeHandle, Track};
use gps_types::rng::SmallRng;
use gps_types::{Cycle, Latency};

use crate::arrival::{exponential_gap, ArrivalModel};
use crate::config::ServeConfig;
use crate::event::{Event, EventKind};
use crate::oracle::ServiceOracle;
use crate::report::ServeReport;

/// Runs one serving simulation to completion.
///
/// Identical configurations produce bit-identical reports: the event heap
/// drains in the total `(time, job, kind)` order, the arrival RNG is
/// seeded from the config, slot assignment is a deterministic stack, and
/// service times come from the memoised (deterministic) oracle.
///
/// # Errors
///
/// Returns a description if the configuration is invalid (see
/// [`ServeConfig::validate`]).
///
/// # Panics
///
/// Panics if a suite workload is inconsistent with the machine — a
/// programming error, as everywhere else in the workspace.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, String> {
    serve_probed(config, ProbeHandle::disabled())
}

/// [`serve`] with a telemetry probe. The loop emits, on the system track,
/// a `serve_arrivals` counter per arrival and `serve_active_jobs` /
/// `serve_queue_depth` / `serve_free_slots` gauges after every event; per
/// slot, a `serve_completions` counter at each completion; and per tenant
/// lane ([`Track::tenant`] indexed by mix position), a
/// `serve_tenant_in_flight` gauge, a `serve_sojourn_cycles` latency
/// histogram, and one `"job"`-category span per job from arrival to
/// completion. Probes only observe — the report is bit-identical to the
/// unprobed run's.
///
/// # Errors
///
/// Returns a description if the configuration is invalid.
///
/// # Panics
///
/// Panics if a suite workload is inconsistent with the machine.
pub fn serve_probed(config: &ServeConfig, probe: ProbeHandle) -> Result<ServeReport, String> {
    config.validate()?;
    let mut oracle = ServiceOracle::new(config.paradigm, config.gpus, config.link, config.scale);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    // Free-slot stack, lowest id on top: assignment order is deterministic.
    let mut free: Vec<u32> = (0..config.slots).rev().collect();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut arrival_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut active: u32 = 0;
    let mut submitted: u64;
    let mut completed: u64 = 0;
    let mut busy_slot: u64 = 0;
    let mut peak_queue: u64 = 0;
    let mut latencies: Vec<u64> = Vec::new();
    let mut per_app: Vec<(String, u64)> = config.mix.iter().map(|m| (m.clone(), 0)).collect();
    let mut makespan = Cycle::ZERO;
    // Probe-only bookkeeping: queued + in-service jobs per tenant lane.
    // Never read by the simulation, so the report stays bit-identical.
    let mut in_flight: Vec<u64> = vec![0; config.mix.len()];

    match config.arrival {
        ArrivalModel::Closed { concurrency } => {
            // Admit the initial window at time zero; completions admit the
            // rest one-for-one.
            let initial = u64::from(concurrency).min(config.jobs);
            for job in 0..initial {
                heap.push(Reverse(Event {
                    time: Cycle::ZERO,
                    job,
                    kind: EventKind::Arrival,
                }));
            }
            submitted = initial;
        }
        ArrivalModel::Open { mean_interarrival } => {
            // A Poisson process from time zero: even the first job waits
            // one exponential gap.
            let gap = exponential_gap(&mut rng, mean_interarrival);
            heap.push(Reverse(Event {
                time: Cycle::new(gap),
                job: 0,
                kind: EventKind::Arrival,
            }));
            submitted = 1;
        }
    }

    while let Some(Reverse(ev)) = heap.pop() {
        let now = ev.time;
        match ev.kind {
            EventKind::Arrival => {
                arrival_of.insert(ev.job, now.as_u64());
                if probe.is_enabled() {
                    probe.counter(Track::SYSTEM, names::SERVE_ARRIVALS, now, 1.0);
                    let mix_idx = (ev.job % config.mix.len() as u64) as usize;
                    if let Some(n) = in_flight.get_mut(mix_idx) {
                        *n += 1;
                        probe.gauge(
                            Track::tenant(mix_idx),
                            names::SERVE_TENANT_IN_FLIGHT,
                            now,
                            *n as f64,
                        );
                    }
                }
                if let ArrivalModel::Open { mean_interarrival } = config.arrival {
                    // Chain the next arrival before anything else touches
                    // the RNG, so the arrival schedule depends only on the
                    // seed, never on service outcomes.
                    if submitted < config.jobs {
                        let gap = exponential_gap(&mut rng, mean_interarrival);
                        heap.push(Reverse(Event {
                            time: now + Latency::new(gap),
                            job: submitted,
                            kind: EventKind::Arrival,
                        }));
                        submitted += 1;
                    }
                }
                if free.is_empty() {
                    queue.push_back(ev.job);
                    peak_queue = peak_queue.max(queue.len() as u64);
                } else {
                    dispatch(
                        ev.job,
                        now,
                        config,
                        &mut oracle,
                        &mut heap,
                        &mut free,
                        &mut active,
                        &mut busy_slot,
                    )?;
                }
            }
            EventKind::Completion { slot } => {
                active = active.saturating_sub(1);
                free.push(slot);
                completed += 1;
                makespan = makespan.max(now);
                let arrived = arrival_of.remove(&ev.job).ok_or_else(|| {
                    format!("job {} completed without a recorded arrival", ev.job)
                })?;
                let sojourn = now.as_u64() - arrived;
                latencies.push(sojourn);
                let mix_idx = (ev.job % config.mix.len() as u64) as usize;
                if let Some((_, count)) = per_app.get_mut(mix_idx) {
                    *count += 1;
                }
                probe.counter(
                    Track::gpu(slot as usize),
                    names::SERVE_COMPLETIONS,
                    now,
                    1.0,
                );
                if probe.is_enabled() {
                    let lane = Track::tenant(mix_idx);
                    probe.latency(lane, names::SERVE_SOJOURN_CYCLES, now, sojourn);
                    probe.span(lane, config.app_of(ev.job), "job", Cycle::new(arrived), now);
                    if let Some(n) = in_flight.get_mut(mix_idx) {
                        *n = n.saturating_sub(1);
                        probe.gauge(lane, names::SERVE_TENANT_IN_FLIGHT, now, *n as f64);
                    }
                }
                if let Some(waiting) = queue.pop_front() {
                    dispatch(
                        waiting,
                        now,
                        config,
                        &mut oracle,
                        &mut heap,
                        &mut free,
                        &mut active,
                        &mut busy_slot,
                    )?;
                } else if matches!(config.arrival, ArrivalModel::Closed { .. })
                    && submitted < config.jobs
                {
                    heap.push(Reverse(Event {
                        time: now,
                        job: submitted,
                        kind: EventKind::Arrival,
                    }));
                    submitted += 1;
                }
            }
        }
        probe.gauge(
            Track::SYSTEM,
            names::SERVE_ACTIVE_JOBS,
            now,
            f64::from(active),
        );
        probe.gauge(
            Track::SYSTEM,
            names::SERVE_QUEUE_DEPTH,
            now,
            queue.len() as f64,
        );
        probe.gauge(
            Track::SYSTEM,
            names::SERVE_FREE_SLOTS,
            now,
            free.len() as f64,
        );
    }

    if completed != config.jobs {
        return Err(format!(
            "serve loop lost jobs: {completed} completed of {} submitted",
            config.jobs
        ));
    }
    latencies.sort_unstable();

    Ok(ServeReport {
        mix: config.mix.clone(),
        paradigm: config.paradigm.label().to_owned(),
        gpus: config.gpus,
        link: config.link.label().to_owned(),
        scale: config.scale.label().to_owned(),
        seed: config.seed,
        mode: config.arrival.label(),
        slots: config.slots,
        jobs: config.jobs,
        makespan,
        busy_slot_cycles: busy_slot,
        peak_queue_depth: peak_queue,
        latencies,
        per_app_jobs: per_app,
    })
}

/// Places `job` on the lowest free slot and schedules its completion. The
/// service time is fixed at dispatch from the oracle at the occupancy the
/// dispatch creates (this job included) — contention is priced by how full
/// the machine is when service starts.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    job: u64,
    now: Cycle,
    config: &ServeConfig,
    oracle: &mut ServiceOracle,
    heap: &mut BinaryHeap<Reverse<Event>>,
    free: &mut Vec<u32>,
    active: &mut u32,
    busy_slot: &mut u64,
) -> Result<(), String> {
    let Some(slot) = free.pop() else {
        return Err(format!("job {job} dispatched with no free slot"));
    };
    *active += 1;
    let service = oracle.service_cycles(config.app_of(job), *active)?;
    *busy_slot += service;
    heap.push(Reverse(Event {
        time: now + Latency::new(service),
        job,
        kind: EventKind::Completion { slot },
    }));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_paradigms::{run_paradigm_configured, Paradigm};
    use gps_sim::SimConfig;
    use gps_workloads::{suite, ScaleProfile};

    #[test]
    fn same_seed_and_mix_is_bit_identical() {
        let cfg = ServeConfig {
            arrival: ArrivalModel::Open {
                mean_interarrival: 2_000_000,
            },
            jobs: 12,
            ..ServeConfig::default()
        };
        let a = serve(&cfg).unwrap();
        let b = serve(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().emit(), b.to_json().emit());
    }

    #[test]
    fn distinct_seeds_stay_valid_and_ordered() {
        for seed in [1u64, 2, 99] {
            let cfg = ServeConfig {
                seed,
                arrival: ArrivalModel::Open {
                    mean_interarrival: 1_000_000,
                },
                jobs: 10,
                ..ServeConfig::default()
            };
            let r = serve(&cfg).unwrap();
            assert_eq!(r.latencies.len() as u64, r.jobs);
            assert!(r.p50() <= r.p95());
            assert!(r.p95() <= r.p99());
            assert!(r.makespan.as_u64() > 0);
            assert!(r.utilization() <= 1.0 + 1e-12);
        }
        // Different seeds shift the arrival schedule (and thus makespan).
        let a = ServeConfig {
            arrival: ArrivalModel::Open {
                mean_interarrival: 1_000_000,
            },
            ..ServeConfig::default()
        };
        let mut b = a.clone();
        b.seed = a.seed + 1;
        assert_ne!(serve(&a).unwrap().makespan, serve(&b).unwrap().makespan);
    }

    #[test]
    fn closed_mode_conserves_jobs() {
        let cfg = ServeConfig {
            jobs: 9,
            ..ServeConfig::default()
        };
        let r = serve(&cfg).unwrap();
        assert_eq!(r.latencies.len() as u64, 9);
        assert_eq!(r.per_app_jobs.iter().map(|(_, n)| n).sum::<u64>(), 9);
        // Closed mode never queues: admissions wait for a free slot.
        assert_eq!(r.peak_queue_depth, 0);
    }

    #[test]
    fn closed_concurrency_one_matches_the_standalone_run() {
        let entry = suite::by_name("jacobi").unwrap();
        let workload = (entry.build)(4, ScaleProfile::Tiny);
        let standalone = run_paradigm_configured(
            Paradigm::Gps,
            &workload,
            SimConfig::gv100_system(4),
            gps_interconnect::LinkGen::Pcie3,
            gps_obs::ProbeHandle::disabled(),
        )
        .unwrap();
        let cfg = ServeConfig {
            mix: vec!["jacobi".to_owned()],
            arrival: ArrivalModel::Closed { concurrency: 1 },
            slots: 1,
            jobs: 3,
            ..ServeConfig::default()
        };
        let r = serve(&cfg).unwrap();
        // One tenant is the exclusive machine: every job takes exactly the
        // standalone run's cycle count, back to back.
        let per_job = standalone.total_cycles.as_u64();
        assert!(r.latencies.iter().all(|&l| l == per_job));
        assert_eq!(r.makespan.as_u64(), 3 * per_job);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overload_builds_a_queue_in_open_mode() {
        // Arrivals far faster than tiny-job service times: the queue must
        // grow beyond the two slots.
        let cfg = ServeConfig {
            arrival: ArrivalModel::Open {
                mean_interarrival: 1_000,
            },
            jobs: 12,
            ..ServeConfig::default()
        };
        let r = serve(&cfg).unwrap();
        assert!(r.peak_queue_depth > 0, "overload must queue");
        // Queueing shows up as tail latency far above the median floor.
        assert!(r.p99() >= r.p50());
    }

    #[test]
    fn invalid_configs_are_refused() {
        let cfg = ServeConfig {
            mix: vec!["doom".to_owned()],
            ..ServeConfig::default()
        };
        assert!(serve(&cfg).is_err());
    }
}
