//! The full configuration of one serving run.

use gps_interconnect::LinkGen;
use gps_paradigms::Paradigm;
use gps_workloads::{suite, ScaleProfile};

use crate::arrival::ArrivalModel;

/// Everything that determines a serving run's report.
///
/// The `Debug` rendering participates in the harness's content-addressed
/// run keys, so every field here perturbs the key.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Application mix; job `j` runs `mix[j % mix.len()]` (deterministic
    /// round-robin, decoupled from the arrival RNG so changing the seed
    /// never changes which application a given job runs).
    pub mix: Vec<String>,
    /// Memory-management paradigm every job runs under.
    pub paradigm: Paradigm,
    /// GPUs in the shared machine.
    pub gpus: usize,
    /// Inter-GPU interconnect generation.
    pub link: LinkGen,
    /// Workload scale profile.
    pub scale: ScaleProfile,
    /// Seed of the arrival process (service times are deterministic given
    /// the mix and occupancy; only interarrival gaps draw from the RNG).
    pub seed: u64,
    /// Open or closed arrival model.
    pub arrival: ArrivalModel,
    /// Total jobs to submit.
    pub jobs: u64,
    /// Tenant slots: the maximum number of jobs in service at once.
    pub slots: u32,
}

impl Default for ServeConfig {
    /// The smoke-test mix: Jacobi + Pagerank, closed at concurrency 2 on
    /// a 4-GPU PCIe 3 machine, 16 tiny jobs, seed 42.
    fn default() -> Self {
        ServeConfig {
            mix: vec!["jacobi".to_owned(), "pagerank".to_owned()],
            paradigm: Paradigm::Gps,
            gpus: 4,
            link: LinkGen::Pcie3,
            scale: ScaleProfile::Tiny,
            seed: 42,
            arrival: ArrivalModel::Closed { concurrency: 2 },
            jobs: 16,
            slots: 2,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: an empty or
    /// unknown mix, a zero job/slot/GPU count, a closed concurrency
    /// exceeding the slot count, or a zero open interarrival mean.
    pub fn validate(&self) -> Result<(), String> {
        if self.mix.is_empty() {
            return Err("mix must name at least one application".to_owned());
        }
        for app in &self.mix {
            if suite::by_name(app).is_none() {
                return Err(format!(
                    "unknown application '{app}' (see `gps-run sweep` usage for the suite)"
                ));
            }
        }
        if self.gpus == 0 {
            return Err("gpus must be positive".to_owned());
        }
        if self.jobs == 0 {
            return Err("jobs must be positive".to_owned());
        }
        if self.slots == 0 {
            return Err("slots must be positive".to_owned());
        }
        match self.arrival {
            ArrivalModel::Open { mean_interarrival } => {
                if mean_interarrival == 0 {
                    return Err("open-mode mean interarrival must be positive".to_owned());
                }
            }
            ArrivalModel::Closed { concurrency } => {
                if concurrency == 0 {
                    return Err("closed-mode concurrency must be positive".to_owned());
                }
                if concurrency > self.slots {
                    return Err(format!(
                        "closed-mode concurrency {concurrency} exceeds the {} tenant slot(s)",
                        self.slots
                    ));
                }
            }
        }
        Ok(())
    }

    /// The application of job `j`: round-robin over the mix.
    pub fn app_of(&self, job: u64) -> &str {
        // gps-lint: allow(no_slice_index) -- index is modulo mix.len(); validate() rejects an empty mix
        &self.mix[(job % self.mix.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = ServeConfig::default();
        c.mix.clear();
        assert!(c.validate().is_err());

        let c = ServeConfig {
            mix: vec!["doom".to_owned()],
            ..ServeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("doom"));

        let c = ServeConfig {
            jobs: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ServeConfig {
            slots: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ServeConfig {
            arrival: ArrivalModel::Closed { concurrency: 3 },
            ..ServeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("exceeds"));

        let c = ServeConfig {
            arrival: ArrivalModel::Open {
                mean_interarrival: 0,
            },
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn jobs_round_robin_over_the_mix() {
        let c = ServeConfig::default();
        assert_eq!(c.app_of(0), "jacobi");
        assert_eq!(c.app_of(1), "pagerank");
        assert_eq!(c.app_of(2), "jacobi");
        assert_eq!(c.app_of(5), "pagerank");
    }
}
