//! Multi-tenant serving simulation on top of the GPS machine model.
//!
//! Every other entry point in this workspace answers a steady-state
//! question: one application, one machine, how many cycles per iteration?
//! This crate answers the capacity-planning question behind the ROADMAP's
//! "heavy traffic from millions of users" north star: when a *stream* of
//! jobs drawn from a mix of applications shares one simulated multi-GPU
//! machine, what throughput does the system sustain and what do the
//! latency tails look like?
//!
//! The model has three layers:
//!
//! * **Arrival process** ([`ArrivalModel`]) — jobs enter either *open*
//!   (Poisson-like: exponential interarrival gaps drawn from the
//!   workspace's own SplitMix64 [`SmallRng`], so the offered load is
//!   independent of completions) or *closed* (a fixed number of jobs in
//!   flight; each completion immediately admits the next). Both are fully
//!   determined by the seed.
//! * **Tenant arbitration** — the machine exposes `slots` tenant slots.
//!   A dispatched job occupies one slot, and its service time comes from
//!   a [`ServiceOracle`] that simulates the job's application on the GPS
//!   machine with [`SimConfig::tenants`] set to the occupancy at dispatch:
//!   co-resident tenants split the last-level TLB ways, the fabric link
//!   bandwidth, the RWQ entries and the GPS-TLB ways, so service times
//!   stretch as the machine fills. One tenant is exactly the exclusive
//!   machine — a closed, concurrency-1 serve run reproduces the
//!   standalone run's per-job cycle count.
//! * **Event loop** ([`serve`]) — a `BinaryHeap` of typed events drained
//!   in `(time, job id, kind)` order. The ordering is total, so the heap's
//!   drain order — and therefore the whole [`ServeReport`] — is
//!   bit-identical across runs with the same [`ServeConfig`].
//!
//! [`SmallRng`]: gps_types::rng::SmallRng
//! [`SimConfig::tenants`]: gps_sim::SimConfig

#![warn(missing_docs)]

pub mod arrival;
pub mod config;
pub mod event;
pub mod oracle;
pub mod report;
pub mod sim;

pub use arrival::ArrivalModel;
pub use config::ServeConfig;
pub use event::{Event, EventKind};
pub use oracle::ServiceOracle;
pub use report::{ServeReport, SERVE_SCHEMA_VERSION};
pub use sim::{serve, serve_probed};
