//! Occupancy-dependent service times, memoised per (application, level).

use std::collections::BTreeMap;

use gps_interconnect::LinkGen;
use gps_obs::ProbeHandle;
use gps_paradigms::{run_paradigm_configured, Paradigm};
use gps_sim::SimConfig;
use gps_workloads::{suite, ScaleProfile};

/// Simulates each (application, occupancy level) pair once on the shared
/// machine and memoises the resulting end-to-end cycle count.
///
/// The occupancy level is applied as [`SimConfig::tenants`]: at level `n`
/// the application keeps `1/n` of the last-level TLB ways, the fabric
/// link bandwidth, the RWQ entries and the GPS-TLB ways, so service times
/// grow as the machine fills. Level 1 is the exclusive machine — its
/// service time is exactly the standalone run's `total_cycles`.
///
/// Memoisation is a `BTreeMap` (deterministic iteration, per the
/// workspace-wide `no_hash_collections` rule) keyed by name and level;
/// since the simulation itself is deterministic, caching never changes a
/// result.
#[derive(Debug)]
pub struct ServiceOracle {
    paradigm: Paradigm,
    gpus: usize,
    link: LinkGen,
    scale: ScaleProfile,
    cache: BTreeMap<(String, u32), u64>,
}

impl ServiceOracle {
    /// Creates an oracle for the given shared machine.
    pub fn new(paradigm: Paradigm, gpus: usize, link: LinkGen, scale: ScaleProfile) -> Self {
        ServiceOracle {
            paradigm,
            gpus,
            link,
            scale,
            cache: BTreeMap::new(),
        }
    }

    /// Service time, in cycles, of one `app` job dispatched while `level`
    /// tenants (including itself) occupy the machine. Never zero, so
    /// simulated time always advances.
    ///
    /// # Errors
    ///
    /// Returns a description if `app` is not in the application suite or
    /// the suite's workload is inconsistent with the machine.
    pub fn service_cycles(&mut self, app: &str, level: u32) -> Result<u64, String> {
        let level = level.max(1);
        let key = (app.to_owned(), level);
        if let Some(&cached) = self.cache.get(&key) {
            return Ok(cached);
        }
        let entry = suite::by_name(app).ok_or_else(|| format!("unknown application '{app}'"))?;
        let workload = (entry.build)(self.gpus, self.scale);
        let config = SimConfig::gv100_system(self.gpus).with_tenants(level);
        let report = run_paradigm_configured(
            self.paradigm,
            &workload,
            config,
            self.link,
            ProbeHandle::disabled(),
        )
        .map_err(|e| format!("simulating '{app}' failed: {e}"))?;
        let cycles = report.total_cycles.as_u64().max(1);
        self.cache.insert(key, cycles);
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> ServiceOracle {
        ServiceOracle::new(Paradigm::Gps, 4, LinkGen::Pcie3, ScaleProfile::Tiny)
    }

    #[test]
    fn level_one_matches_the_standalone_run() {
        let mut o = oracle();
        let entry = suite::by_name("jacobi").unwrap();
        let workload = (entry.build)(4, ScaleProfile::Tiny);
        let standalone = run_paradigm_configured(
            Paradigm::Gps,
            &workload,
            SimConfig::gv100_system(4),
            LinkGen::Pcie3,
            ProbeHandle::disabled(),
        )
        .unwrap();
        assert_eq!(
            o.service_cycles("jacobi", 1).unwrap(),
            standalone.total_cycles.as_u64()
        );
        // Level 0 is clamped to the exclusive machine.
        assert_eq!(
            o.service_cycles("jacobi", 0).unwrap(),
            standalone.total_cycles.as_u64()
        );
    }

    #[test]
    fn contention_stretches_service_times() {
        let mut o = oracle();
        let solo = o.service_cycles("jacobi", 1).unwrap();
        let shared = o.service_cycles("jacobi", 2).unwrap();
        assert!(
            shared > solo,
            "two tenants must be slower than one ({shared} vs {solo})"
        );
        // Memoisation returns the identical value.
        assert_eq!(o.service_cycles("jacobi", 2).unwrap(), shared);
    }

    #[test]
    fn unknown_apps_are_reported() {
        assert!(oracle().service_cycles("doom", 1).is_err());
    }
}
