//! Typed serve-loop events with a total drain order.

use gps_types::Cycle;

/// What happens at an [`Event`]'s timestamp.
///
/// `Arrival` sorts before `Completion` at equal `(time, job)` so a job can
/// never complete before the loop has seen it arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The job enters the system (and dispatches or queues).
    Arrival,
    /// The job finishes service and frees its tenant slot.
    Completion {
        /// The tenant slot the job occupied.
        slot: u32,
    },
}

/// One scheduled event.
///
/// The derived ordering is lexicographic over `(time, job, kind)` — a
/// *total* order, because a single job has at most one arrival and one
/// completion and those never share a timestamp (service times are at
/// least one cycle). Draining a `BinaryHeap<Reverse<Event>>` therefore
/// visits events in exactly one possible sequence, which is what makes
/// the whole serve report bit-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// When the event fires.
    pub time: Cycle,
    /// The job it concerns (ids are assigned in submission order).
    pub job: u64,
    /// What fires.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_drains_by_time_then_job_then_kind() {
        let mut heap = BinaryHeap::new();
        let events = [
            Event {
                time: Cycle::new(20),
                job: 0,
                kind: EventKind::Completion { slot: 0 },
            },
            Event {
                time: Cycle::new(10),
                job: 1,
                kind: EventKind::Arrival,
            },
            Event {
                time: Cycle::new(10),
                job: 0,
                kind: EventKind::Arrival,
            },
            Event {
                time: Cycle::new(10),
                job: 1,
                kind: EventKind::Completion { slot: 1 },
            },
        ];
        for e in events {
            heap.push(Reverse(e));
        }
        let drained: Vec<Event> = std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e)).collect();
        assert_eq!(drained[0].job, 0);
        assert_eq!(drained[0].kind, EventKind::Arrival);
        assert_eq!(drained[1].job, 1);
        assert_eq!(drained[1].kind, EventKind::Arrival);
        assert_eq!(drained[2].kind, EventKind::Completion { slot: 1 });
        assert_eq!(drained[3].time, Cycle::new(20));
    }
}
