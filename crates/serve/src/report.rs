//! The serving report: integer facts, derived-on-demand rates.

use gps_types::{Cycle, Json};

/// Bump when the JSON emission below changes shape.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// The result of one serving run.
///
/// Every stored field is an integer or a string, so the derived
/// `PartialEq` is exact: two reports compare equal if and only if they
/// are bit-identical, which is what the determinism tests assert. Rates
/// and ratios (QPS, utilisation) are *derived* in accessor methods at
/// read time and never stored, so float rounding can never leak into an
/// equality check or a run key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Application mix, in round-robin order.
    pub mix: Vec<String>,
    /// Paradigm label.
    pub paradigm: String,
    /// GPUs in the shared machine.
    pub gpus: usize,
    /// Interconnect label.
    pub link: String,
    /// Scale label.
    pub scale: String,
    /// Arrival seed.
    pub seed: u64,
    /// Arrival-model label (`open(mean=…)` / `closed(c=…)`).
    pub mode: String,
    /// Tenant slots.
    pub slots: u32,
    /// Jobs submitted (and, by conservation, completed).
    pub jobs: u64,
    /// Completion time of the last job.
    pub makespan: Cycle,
    /// Sum over jobs of their service time: slot-cycles spent serving.
    pub busy_slot_cycles: u64,
    /// Deepest the wait queue ever got (open mode; zero in closed mode).
    pub peak_queue_depth: u64,
    /// Per-job latency (completion − arrival) in cycles, sorted ascending.
    pub latencies: Vec<u64>,
    /// Jobs completed per application, in mix order.
    pub per_app_jobs: Vec<(String, u64)>,
}

impl ServeReport {
    /// Nearest-rank percentile of the job latencies, in cycles (`p` in
    /// `[0, 100]`; zero if no job completed).
    pub fn latency_percentile(&self, p: u32) -> u64 {
        let n = self.latencies.len() as u64;
        if n == 0 {
            return 0;
        }
        // Nearest rank: smallest index whose rank covers p percent.
        let rank = (u64::from(p) * n).div_ceil(100).clamp(1, n);
        // gps-lint: allow(no_slice_index) -- rank is clamped to [1, latencies.len()]
        self.latencies[(rank - 1) as usize]
    }

    /// Median job latency in cycles.
    pub fn p50(&self) -> u64 {
        self.latency_percentile(50)
    }

    /// 95th-percentile job latency in cycles.
    pub fn p95(&self) -> u64 {
        self.latency_percentile(95)
    }

    /// 99th-percentile job latency in cycles.
    pub fn p99(&self) -> u64 {
        self.latency_percentile(99)
    }

    /// Mean job latency in cycles (integer division; zero if no jobs).
    pub fn mean_latency(&self) -> u64 {
        if self.latencies.is_empty() {
            0
        } else {
            self.latencies.iter().sum::<u64>() / self.latencies.len() as u64
        }
    }

    /// Sustained throughput in jobs per second of simulated time.
    pub fn qps(&self) -> f64 {
        if self.makespan.as_u64() == 0 {
            0.0
        } else {
            self.jobs as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Fraction of slot-time spent serving, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let denom = u64::from(self.slots).saturating_mul(self.makespan.as_u64());
        if denom == 0 {
            0.0
        } else {
            self.busy_slot_cycles as f64 / denom as f64
        }
    }

    /// The report as a JSON document (versioned via
    /// [`SERVE_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "serve_schema_version".to_owned(),
                Json::Num(f64::from(SERVE_SCHEMA_VERSION)),
            ),
            (
                "mix".to_owned(),
                Json::Arr(self.mix.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
            ("paradigm".to_owned(), Json::Str(self.paradigm.clone())),
            ("gpus".to_owned(), Json::Num(self.gpus as f64)),
            ("link".to_owned(), Json::Str(self.link.clone())),
            ("scale".to_owned(), Json::Str(self.scale.clone())),
            ("seed".to_owned(), Json::Num(self.seed as f64)),
            ("mode".to_owned(), Json::Str(self.mode.clone())),
            ("slots".to_owned(), Json::Num(f64::from(self.slots))),
            ("jobs".to_owned(), Json::Num(self.jobs as f64)),
            (
                "makespan_cycles".to_owned(),
                Json::Num(self.makespan.as_u64() as f64),
            ),
            ("qps".to_owned(), Json::Num(self.qps())),
            ("utilization".to_owned(), Json::Num(self.utilization())),
            ("p50_cycles".to_owned(), Json::Num(self.p50() as f64)),
            ("p95_cycles".to_owned(), Json::Num(self.p95() as f64)),
            ("p99_cycles".to_owned(), Json::Num(self.p99() as f64)),
            (
                "mean_latency_cycles".to_owned(),
                Json::Num(self.mean_latency() as f64),
            ),
            (
                "peak_queue_depth".to_owned(),
                Json::Num(self.peak_queue_depth as f64),
            ),
            (
                "per_app_jobs".to_owned(),
                Json::Arr(
                    self.per_app_jobs
                        .iter()
                        .map(|(app, n)| {
                            Json::Obj(vec![
                                ("app".to_owned(), Json::Str(app.clone())),
                                ("jobs".to_owned(), Json::Num(*n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>) -> ServeReport {
        let jobs = latencies.len() as u64;
        ServeReport {
            mix: vec!["jacobi".to_owned()],
            paradigm: "gps".to_owned(),
            gpus: 4,
            link: "pcie3".to_owned(),
            scale: "tiny".to_owned(),
            seed: 42,
            mode: "closed(c=1)".to_owned(),
            slots: 1,
            jobs,
            makespan: Cycle::new(1_000_000),
            busy_slot_cycles: 900_000,
            peak_queue_depth: 0,
            latencies,
            per_app_jobs: vec![("jacobi".to_owned(), jobs)],
        }
    }

    #[test]
    fn nearest_rank_percentiles() {
        let r = report((1..=100).collect());
        assert_eq!(r.p50(), 50);
        assert_eq!(r.p95(), 95);
        assert_eq!(r.p99(), 99);
        assert_eq!(r.latency_percentile(100), 100);
        assert_eq!(r.latency_percentile(0), 1);
        assert_eq!(r.mean_latency(), 50);

        let single = report(vec![7]);
        assert_eq!(single.p50(), 7);
        assert_eq!(single.p99(), 7);

        let empty = report(vec![]);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean_latency(), 0);
    }

    #[test]
    fn rates_derive_from_integers() {
        let r = report(vec![10, 20]);
        // 2 jobs over 1 ms of simulated time = 2000 jobs/s.
        assert!((r.qps() - 2000.0).abs() < 1e-9);
        assert!((r.utilization() - 0.9).abs() < 1e-12);
        let empty = ServeReport {
            makespan: Cycle::ZERO,
            ..report(vec![])
        };
        assert!(empty.qps().abs() < 1e-12);
        assert!(empty.utilization().abs() < 1e-12);
    }

    #[test]
    fn json_carries_schema_version_and_percentiles() {
        let r = report(vec![5, 6, 7]);
        let j = r.to_json();
        assert_eq!(
            j.get("serve_schema_version").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(j.get("jobs").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("p50_cycles").and_then(Json::as_u64), Some(6));
        assert_eq!(j.get("mode").and_then(Json::as_str), Some("closed(c=1)"));
        assert_eq!(
            j.get("per_app_jobs")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        // Round-trips through the emitter.
        assert_eq!(Json::parse(&j.emit()).unwrap(), j);
    }
}
