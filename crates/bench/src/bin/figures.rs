//! Regenerates the paper's tables and figures.
//!
//! Usage: `figures <id> [scale]` where `<id>` is one of `table1`, `table2`,
//! `fig1`, `fig3`, `fig8`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `tlb`, `pagesize`, or `all`; extensions/ablations beyond the
//! paper: `watermark`, `profiling`, `nvlink`, `scaling`, `oversub`,
//! `serve`, or `extras` for all of them. `[scale]` is `tiny`, `small` or `paper`
//! (default `paper`).
//! With `--store <path>` the default-machine figures run through the
//! `gps-harness` result store: completed runs (from earlier figure
//! invocations or `gps-run sweep`) are reused, fresh ones are appended, so
//! an interrupted regeneration resumes where it stopped.

use gps_bench::figures;
use gps_bench::figures::FigureCtx;
use gps_workloads::ScaleProfile;

const USAGE: &str = "\
usage: figures <id> [scale] [--csv] [--store <path>]

Regenerates the tables and figures of the GPS paper (MICRO 2021).

  <id>     table1 table2 fig1 fig3 fig8 fig9 fig10 fig11 fig12 fig13 fig14
           tlb pagesize all
           ablations/extensions: watermark profiling nvlink scaling topology
           oversub serve extras
  [scale]  tiny | small | paper (default: paper)
  --csv    emit CSV instead of an aligned text table (figures only)
  --store <path>
           resume from (and append to) a gps-run result store: completed
           default-machine runs are content-addressed cache hits, only the
           missing ones simulate (custom-policy ablations always rerun)
";

fn emit(fig: gps_bench::figures::Figure, csv: bool) {
    if csv {
        println!("{}", fig.to_csv());
    } else {
        println!("{}", fig.render());
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = if let Some(pos) = args.iter().position(|a| a == "--csv") {
        args.remove(pos);
        true
    } else {
        false
    };
    let ctx = if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--store needs a path\n{USAGE}");
            std::process::exit(2);
        }
        FigureCtx::with_store(args.remove(pos))
    } else {
        FigureCtx::in_memory()
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let id = args.first().map(String::as_str).unwrap_or("all").to_owned();
    let id = id.as_str();
    let scale = match args.get(1).map(String::as_str) {
        Some("tiny") => ScaleProfile::Tiny,
        Some("small") => ScaleProfile::Small,
        _ => ScaleProfile::Paper,
    };
    match id {
        "table1" => println!("{}", figures::table1()),
        "table2" => println!("{}", figures::table2()),
        "fig1" => emit(figures::fig1(&ctx, scale), csv),
        "fig3" => emit(figures::fig3(), csv),
        "fig8" => emit(figures::fig8(&ctx, scale), csv),
        "fig9" => emit(figures::fig9(&ctx, scale), csv),
        "fig10" => emit(figures::fig10(&ctx, scale), csv),
        "fig11" => emit(figures::fig11(&ctx, scale), csv),
        "fig12" => emit(figures::fig12(&ctx, scale), csv),
        "fig13" => emit(figures::fig13(&ctx, scale), csv),
        "fig14" => emit(figures::fig14(scale), csv),
        "tlb" => emit(figures::gps_tlb_sensitivity(scale), csv),
        "pagesize" => emit(figures::page_size_sensitivity(scale), csv),
        "watermark" => emit(figures::watermark_sensitivity(scale), csv),
        "profiling" => emit(figures::profiling_mode(scale), csv),
        "nvlink" => emit(figures::nvlink_sweep(&ctx, scale), csv),
        "scaling" => emit(figures::scaling_curve(&ctx, scale), csv),
        "topology" => emit(figures::topology_comparison(scale), csv),
        "oversub" => emit(figures::oversubscription_sweep(&ctx, scale), csv),
        "serve" => emit(figures::serve_sweep(scale), csv),
        "extras" => {
            for f in [
                figures::watermark_sensitivity(scale),
                figures::profiling_mode(scale),
                figures::nvlink_sweep(&ctx, scale),
                figures::scaling_curve(&ctx, scale),
                figures::topology_comparison(scale),
                figures::oversubscription_sweep(&ctx, scale),
                figures::serve_sweep(scale),
            ] {
                println!("{}", f.render());
            }
        }
        "all" => {
            println!("{}", figures::table1());
            println!("{}", figures::table2());
            println!("{}", figures::fig3().render());
            for f in [
                figures::fig1(&ctx, scale),
                figures::fig8(&ctx, scale),
                figures::fig9(&ctx, scale),
                figures::fig10(&ctx, scale),
                figures::fig11(&ctx, scale),
                figures::fig12(&ctx, scale),
                figures::fig13(&ctx, scale),
                figures::fig14(scale),
                figures::gps_tlb_sensitivity(scale),
                figures::page_size_sensitivity(scale),
            ] {
                println!("{}", f.render());
            }
        }
        other => {
            eprintln!("unknown figure id {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
