//! Per-figure/table reproduction runners (§7 of the paper).
//!
//! Every function regenerates the rows/series of one table or figure and
//! returns them as a [`Figure`] so integration tests can assert the
//! *shapes* (who wins, rough factors, crossovers) without parsing text.
//!
//! Figures that run the default machine — the speedup tables (1, 8, 11,
//! 12, 13), fig9/fig10, and the link/scaling sweeps — execute through
//! [`gps_harness::run_units`] when their [`FigureCtx`] carries a
//! result-store path: runs are content-addressed, completed keys are cache
//! hits, so an interrupted or repeated regeneration only simulates what is
//! missing, and a store shared with `gps-run sweep` reuses its results.
//! Figures that need a custom policy or machine configuration (fig14 and
//! the TLB/watermark/profiling/topology/page-size ablations) fall outside
//! the run-key space and always execute in memory.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::PathBuf;

use gps_core::GpsConfig;
use gps_harness::{
    run_key_default_machine, run_units, RunRecord, RunStatus, RunUnit, SweepOptions,
};
use gps_interconnect::{LinkGen, PLATFORMS};
use gps_paradigms::{GpsPolicy, Paradigm};
use gps_sim::{GpuConfig, MemoryPressure};
use gps_types::PageSize;
use gps_workloads::{suite, ScaleProfile};

use crate::runner::{
    baseline, geomean, measure, measure_with_policy, parallel_map, steady_traffic_per_iteration,
    Measurement, RunSpec,
};

/// One reproduced figure: a label per series column and one row per
/// application (or sweep point).
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id and caption.
    pub title: String,
    /// Column headers (after the row label).
    pub columns: Vec<String>,
    /// `(row label, values)` in presentation order.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Figure {
    /// Value at `(row_label, column_label)`.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(r, _)| r == row)
            .and_then(|(_, vals)| vals.get(c).copied())
    }

    /// All values of one column, in row order.
    pub fn column(&self, column: &str) -> Vec<f64> {
        let Some(c) = self.columns.iter().position(|c| c == column) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|(_, vals)| vals.get(c).copied())
            .collect()
    }

    /// Renders the figure as CSV (header row, then one row per label).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "label");
        for c in &self.columns {
            let _ = write!(out, ",{}", c.replace(',', ";"));
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{}", label.replace(',', ";"));
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(r, _)| r.len())
            .chain([9])
            .max()
            .unwrap_or(9);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .chain([9])
            .max()
            .unwrap_or(9)
            + 2;
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_w$}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in vals {
                let _ = write!(out, "{v:>col_w$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn spec(paradigm: Paradigm, gpus: usize, link: LinkGen, scale: ScaleProfile) -> RunSpec {
    RunSpec {
        paradigm,
        gpus,
        link,
        scale,
        pressure: MemoryPressure::NONE,
        topology: gps_interconnect::Topology::Switch,
        parallel: 0,
    }
}

/// Execution context of the figure runners.
#[derive(Debug, Clone, Default)]
pub struct FigureCtx {
    /// When set, default-machine runs execute through
    /// [`gps_harness::run_units`] against the JSON-lines result store at
    /// this path: completed run keys are skipped (resume) and fresh
    /// results are appended as they finish.
    pub store: Option<PathBuf>,
}

impl FigureCtx {
    /// Run every simulation in memory (no store, no resume).
    pub fn in_memory() -> FigureCtx {
        FigureCtx { store: None }
    }

    /// Resume from (and append to) the result store at `path`.
    pub fn with_store(path: impl Into<PathBuf>) -> FigureCtx {
        FigureCtx {
            store: Some(path.into()),
        }
    }
}

/// The slice of one run the figure math consumes — distilled from an
/// in-memory [`Measurement`] or read back from a stored [`RunRecord`];
/// identical either way (the JSON codec round-trips `f64` exactly).
struct FigRun {
    steady_cycles: f64,
    total_cycles: f64,
    metrics: Vec<(String, f64)>,
}

impl FigRun {
    fn metric(&self, name: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    fn steady_traffic(&self) -> f64 {
        self.metric("steady_traffic_per_iteration")
    }
}

/// Mirrors what the sweep executor stores per run ([`RunRecord::metrics`]),
/// so both execution paths feed the figure math the same numbers.
fn fig_run(m: &Measurement) -> FigRun {
    let mut metrics = m.report.policy_metrics.clone();
    metrics.push((
        "steady_traffic_per_iteration".to_owned(),
        steady_traffic_per_iteration(&m.report, m.phases_per_iteration),
    ));
    FigRun {
        steady_cycles: m.steady_cycles,
        total_cycles: m.report.total_cycles.as_u64() as f64,
        metrics,
    }
}

/// The single-GPU run every speedup is normalised to (same spec as
/// [`baseline`]).
fn baseline_spec(scale: ScaleProfile) -> RunSpec {
    spec(Paradigm::InfiniteBw, 1, LinkGen::Pcie3, scale)
}

/// Executes `jobs` (application name × default-machine spec) and returns
/// one [`FigRun`] per job, in order.
///
/// Without a store this is a plain [`parallel_map`] over [`measure`]. With
/// one, the jobs become deduplicated [`RunUnit`]s handed to [`run_units`],
/// which skips keys the store has already completed and appends the rest —
/// repeated regeneration, and figures sharing runs (the per-link sweeps
/// share their baselines), only simulate what is missing. A quarantined
/// run panics: figure math cannot proceed on a placeholder record.
fn run_default_machine(ctx: &FigureCtx, jobs: &[(&'static str, RunSpec)]) -> Vec<FigRun> {
    let Some(store) = &ctx.store else {
        return parallel_map(
            jobs.iter()
                .map(|&(name, s)| {
                    let app = suite::by_name(name).expect("known app");
                    move || fig_run(&measure(&app, s).expect("workload/machine mismatch"))
                })
                .collect(),
        );
    };

    let mut units = Vec::new();
    let mut seen = BTreeSet::new();
    for &(name, s) in jobs {
        let key = run_key_default_machine(name, s);
        if seen.insert(key.clone()) {
            units.push(RunUnit {
                key,
                app: name.to_owned(),
                spec: s,
            });
        }
    }
    let outcome =
        run_units(units, store, &SweepOptions::default()).expect("figure result store I/O");
    let by_key: BTreeMap<&str, &RunRecord> = outcome
        .records
        .iter()
        .map(|r| (r.key.as_str(), r))
        .collect();
    jobs.iter()
        .map(|&(name, s)| {
            let key = run_key_default_machine(name, s);
            let r = by_key
                .get(key.as_str())
                .unwrap_or_else(|| panic!("result store is missing run {key}"));
            assert!(
                r.status == RunStatus::Ok,
                "figure run quarantined: {} ({})",
                r.key,
                r.error.as_deref().unwrap_or("unknown error"),
            );
            FigRun {
                steady_cycles: r.steady_cycles,
                total_cycles: r.total_cycles as f64,
                metrics: r.metrics.clone(),
            }
        })
        .collect()
}

/// Speedup table over the application suite: one row per app plus a
/// geomean row, one column per `(paradigm, link)` pair.
fn speedup_figure(
    ctx: &FigureCtx,
    title: &str,
    columns: Vec<(String, Paradigm, LinkGen)>,
    gpus: usize,
    scale: ScaleProfile,
) -> Figure {
    let apps = suite::all();
    // Baselines first, then the grid, as one job list — a store-backed
    // regeneration resolves all of it in a single `run_units` invocation.
    let mut jobs: Vec<(&'static str, RunSpec)> = apps
        .iter()
        .map(|app| (app.name, baseline_spec(scale)))
        .collect();
    for app in &apps {
        for (_, paradigm, link) in &columns {
            jobs.push((app.name, spec(*paradigm, gpus, *link, scale)));
        }
    }
    let runs = run_default_machine(ctx, &jobs);
    let (bases, grid) = runs.split_at(apps.len());

    let ncols = columns.len();
    let mut rows = Vec::new();
    let mut per_column: Vec<Vec<f64>> = vec![Vec::new(); ncols];
    for (ai, app) in apps.iter().enumerate() {
        let mut vals = Vec::with_capacity(ncols);
        for ci in 0..ncols {
            let s = bases[ai].steady_cycles / grid[ai * ncols + ci].steady_cycles;
            per_column[ci].push(s);
            vals.push(s);
        }
        rows.push((app.name.to_owned(), vals));
    }
    rows.push((
        "geomean".to_owned(),
        per_column.iter().map(|c| geomean(c)).collect(),
    ));
    Figure {
        title: title.to_owned(),
        columns: columns.into_iter().map(|(n, _, _)| n).collect(),
        rows,
    }
}

/// Table 1: the simulated machine.
pub fn table1() -> String {
    let g = GpuConfig::gv100();
    let c = GpsConfig::paper();
    let mut out = String::new();
    let mut row = |k: &str, v: String| {
        let _ = writeln!(out, "{k:<34}{v}");
    };
    row("== Table 1: simulation settings ==", String::new());
    row("Cache block size", "128 bytes".into());
    row("Global memory", format!("{} GB", g.dram_bytes >> 30));
    row("Streaming multiprocessors (SM)", g.sms.to_string());
    row("CUDA cores/SM", "64".into());
    row("L2 cache size", format!("{} MB", g.l2_bytes >> 20));
    row("Warp size", g.warp_size.to_string());
    row("Maximum threads per SM", g.max_threads_per_sm.to_string());
    row("Maximum threads per CTA", g.max_threads_per_cta.to_string());
    row("Remote write queue", format!("{} entries", c.rwq_entries));
    row(
        "Remote write queue entry size",
        format!("{} bytes", c.rwq_entry_bytes),
    );
    row("GPS-TLB", format!("{}-way set associative", c.gps_tlb.ways));
    row("GPS-TLB size", format!("{} entries", c.gps_tlb.entries()));
    row("Virtual address", "49 bits".into());
    row("Physical address", "47 bits".into());
    out
}

/// Table 2: the application suite, augmented with the generators'
/// measured access-mix characteristics (tiny-scale, 4 GPUs).
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: applications under study ==");
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>10} {:>9} {:>9}  description",
        "app", "pattern", "cy/line", "atomic%", "dom.deg"
    );
    for app in suite::all() {
        let c = gps_workloads::characterize(&(app.build)(4, ScaleProfile::Tiny));
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:>10.0} {:>8.0}% {:>9}  {}",
            app.name,
            app.pattern.to_string(),
            c.compute_per_line(),
            c.atomic_write_fraction() * 100.0,
            c.dominant_degree().unwrap_or(0),
            app.description
        );
    }
    out
}

/// Figure 1: 4-GPU strong scaling of the bulk-synchronous (memcpy)
/// programming style under PCIe 3.0, projected PCIe 6.0 and an infinite
/// interconnect.
pub fn fig1(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    speedup_figure(
        ctx,
        "Figure 1: 4-GPU scaling vs interconnect (memcpy programming model)",
        vec![
            ("PCIe3.0".into(), Paradigm::Memcpy, LinkGen::Pcie3),
            ("PCIe6(projected)".into(), Paradigm::Memcpy, LinkGen::Pcie6),
            ("InfiniteBW".into(), Paradigm::InfiniteBw, LinkGen::Infinite),
        ],
        4,
        scale,
    )
}

/// Figure 3: local vs remote bandwidth across platform generations.
pub fn fig3() -> Figure {
    Figure {
        title: "Figure 3: local and remote bandwidths across GPU platforms (GB/s)".into(),
        columns: vec!["Local".into(), "Remote".into(), "Gap".into()],
        rows: PLATFORMS
            .iter()
            .map(|p| {
                (
                    p.name.to_owned(),
                    vec![p.local_gbps, p.remote_gbps, p.gap()],
                )
            })
            .collect(),
    }
}

/// Figure 8: 4-GPU speedup of every paradigm over one GPU (PCIe 3.0).
pub fn fig8(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    speedup_figure(
        ctx,
        "Figure 8: 4-GPU speedup of different paradigms (PCIe 3.0)",
        Paradigm::FIGURE8
            .iter()
            .map(|p| (p.to_string(), *p, LinkGen::Pcie3))
            .collect(),
        4,
        scale,
    )
}

/// Figure 9: subscriber distribution of shared GPS pages (percent of
/// multi-subscriber pages with 2, 3 and 4 subscribers) on 4 GPUs.
pub fn fig9(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let apps = suite::all();
    let jobs: Vec<(&'static str, RunSpec)> = apps
        .iter()
        .map(|app| (app.name, spec(Paradigm::Gps, 4, LinkGen::Pcie3, scale)))
        .collect();
    let runs = run_default_machine(ctx, &jobs);
    let rows = apps
        .iter()
        .zip(&runs)
        .map(|(app, run)| {
            let count = |k: usize| run.metric(&format!("pages_{k}_subscribers"));
            let shared: f64 = (2..=4).map(count).sum();
            let pct = |k: usize| {
                if shared > 0.0 {
                    100.0 * count(k) / shared
                } else {
                    0.0
                }
            };
            (app.name.to_owned(), vec![pct(4), pct(3), pct(2)])
        })
        .collect();
    Figure {
        title: "Figure 9: subscriber distribution of shared pages (% of multi-subscriber pages)"
            .into(),
        columns: vec![
            "4 subscribers".into(),
            "3 subscribers".into(),
            "2 subscribers".into(),
        ],
        rows,
    }
}

/// Figure 10: steady-state interconnect traffic per iteration, normalised
/// to the memcpy paradigm (4 GPUs, PCIe 3.0).
pub fn fig10(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let apps = suite::all();
    let paradigms = [
        Paradigm::Um,
        Paradigm::UmHints,
        Paradigm::Rdl,
        Paradigm::Memcpy,
        Paradigm::Gps,
    ];
    let jobs: Vec<(&'static str, RunSpec)> = apps
        .iter()
        .flat_map(|app| {
            paradigms
                .iter()
                .map(move |&p| (app.name, spec(p, 4, LinkGen::Pcie3, scale)))
        })
        .collect();
    let runs = run_default_machine(ctx, &jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            let traffic: Vec<f64> = (0..paradigms.len())
                .map(|ci| runs[ai * paradigms.len() + ci].steady_traffic())
                .collect();
            let memcpy = traffic[3].max(1.0);
            (
                app.name.to_owned(),
                vec![
                    traffic[0] / memcpy,
                    traffic[1] / memcpy,
                    traffic[2] / memcpy,
                    traffic[4] / memcpy,
                ],
            )
        })
        .collect();
    Figure {
        title: "Figure 10: data moved over interconnect normalised to memcpy".into(),
        columns: vec!["UM".into(), "UM+hints".into(), "RDL".into(), "GPS".into()],
        rows,
    }
}

/// Figure 11: GPS with vs without subscription tracking (4 GPUs, PCIe 3.0).
pub fn fig11(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    speedup_figure(
        ctx,
        "Figure 11: performance sensitivity to subscription (4 GPUs, PCIe 3.0)",
        vec![
            (
                "GPS w/o subscription".into(),
                Paradigm::GpsNoSubscription,
                LinkGen::Pcie3,
            ),
            (
                "GPS with subscription".into(),
                Paradigm::Gps,
                LinkGen::Pcie3,
            ),
        ],
        4,
        scale,
    )
}

/// Figure 12: 16-GPU speedups under projected PCIe 6.0.
pub fn fig12(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    speedup_figure(
        ctx,
        "Figure 12: 16-GPU performance of different paradigms (PCIe 6.0 projected)",
        Paradigm::FIGURE8
            .iter()
            .map(|p| (p.to_string(), *p, LinkGen::Pcie6))
            .collect(),
        16,
        scale,
    )
}

/// Figure 13: geomean 4-GPU speedup per paradigm as the interconnect
/// improves from PCIe 3.0 to projected PCIe 6.0.
pub fn fig13(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let mut rows = Vec::new();
    for link in LinkGen::PCIE_SWEEP {
        let fig = speedup_figure(
            ctx,
            "inner",
            Paradigm::FIGURE8
                .iter()
                .map(|p| (p.to_string(), *p, link))
                .collect(),
            4,
            scale,
        );
        let geo = fig.rows.last().expect("geomean row").1.clone();
        rows.push((link.to_string(), geo));
    }
    Figure {
        title: "Figure 13: geomean speedup vs interconnect bandwidth (4 GPUs)".into(),
        columns: Paradigm::FIGURE8.iter().map(|p| p.to_string()).collect(),
        rows,
    }
}

/// Figure 14: GPS remote-write-queue hit rate vs queue size.
pub fn fig14(scale: ScaleProfile) -> Figure {
    let sizes = [0usize, 32, 64, 128, 256, 512, 1024];
    let apps = suite::all();
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            sizes.iter().map(move |&size| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let mut policy =
                        GpsPolicy::with_config(GpsConfig::paper().with_rwq_entries(size));
                    let m = measure_with_policy(
                        &app,
                        spec(Paradigm::Gps, 4, LinkGen::Pcie3, scale),
                        &mut policy,
                    )
                    .expect("workload/machine mismatch");
                    m.report.metric("rwq_hit_rate").unwrap_or(0.0) * 100.0
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            (
                app.name.to_owned(),
                results[ai * sizes.len()..(ai + 1) * sizes.len()].to_vec(),
            )
        })
        .collect();
    Figure {
        title: "Figure 14: GPS write queue hit rate (%) vs queue size".into(),
        columns: sizes.iter().map(|s| s.to_string()).collect(),
        rows,
    }
}

/// §7.4: GPS-TLB hit rate vs entry count (the paper finds ~100 % at 32).
pub fn gps_tlb_sensitivity(scale: ScaleProfile) -> Figure {
    let geometries = [(1usize, 8usize), (2, 8), (4, 8), (8, 8)]; // 8..64 entries
    let apps = suite::all();
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            geometries.iter().map(move |&(sets, ways)| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let mut cfg = GpsConfig::paper();
                    cfg.gps_tlb = gps_mem::TlbConfig { sets, ways };
                    let mut policy = GpsPolicy::with_config(cfg);
                    let m = measure_with_policy(
                        &app,
                        spec(Paradigm::Gps, 4, LinkGen::Pcie3, scale),
                        &mut policy,
                    )
                    .expect("workload/machine mismatch");
                    m.report.metric("gps_tlb_hit_rate").unwrap_or(0.0) * 100.0
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            (
                app.name.to_owned(),
                results[ai * geometries.len()..(ai + 1) * geometries.len()].to_vec(),
            )
        })
        .collect();
    Figure {
        title: "GPS-TLB hit rate (%) vs entries (4 GPUs, PCIe 3.0)".into(),
        columns: geometries
            .iter()
            .map(|(s, w)| (s * w).to_string())
            .collect(),
        rows,
    }
}

/// Ablation (beyond the paper): drain-watermark sensitivity. The paper
/// fixes the high watermark at capacity - 1 "to maximize coalescing
/// opportunity" (§5.2); sweeping it shows the coalescing lost by draining
/// earlier.
pub fn watermark_sensitivity(scale: ScaleProfile) -> Figure {
    let watermarks = [63usize, 127, 255, 383, 511];
    let apps: Vec<_> = ["ct", "eqwp", "diffusion", "hit"]
        .iter()
        .map(|n| suite::by_name(n).expect("known app"))
        .collect();
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            watermarks.iter().map(move |&wm| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let mut cfg = GpsConfig::paper();
                    cfg.drain_watermark = wm;
                    let mut policy = GpsPolicy::with_config(cfg);
                    let m = measure_with_policy(
                        &app,
                        spec(Paradigm::Gps, 4, LinkGen::Pcie3, scale),
                        &mut policy,
                    )
                    .expect("workload/machine mismatch");
                    m.report.metric("rwq_hit_rate").unwrap_or(0.0) * 100.0
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            (
                app.name.to_owned(),
                results[ai * watermarks.len()..(ai + 1) * watermarks.len()].to_vec(),
            )
        })
        .collect();
    Figure {
        title: "Ablation: write-queue hit rate (%) vs drain watermark (512-entry queue)".into(),
        columns: watermarks.iter().map(|w| w.to_string()).collect(),
        rows,
    }
}

/// Ablation (§3.2/§5.2 discussion): subscribed-by-default vs
/// unsubscribed-by-default profiling. The former over-transfers during
/// iteration 0; the latter pays first-touch remote reads instead.
pub fn profiling_mode(scale: ScaleProfile) -> Figure {
    let apps = suite::all();
    let modes = [
        gps_core::ProfilingMode::SubscribedByDefault,
        gps_core::ProfilingMode::UnsubscribedByDefault,
    ];
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            modes.iter().map(move |&mode| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let mut cfg = GpsConfig::paper();
                    cfg.profiling = mode;
                    let mut policy = GpsPolicy::with_config(cfg);
                    let m = measure_with_policy(
                        &app,
                        spec(Paradigm::Gps, 4, LinkGen::Pcie3, scale),
                        &mut policy,
                    )
                    .expect("workload/machine mismatch");
                    let ppi = 2;
                    let iter0 = m.report.phase_ends[ppi - 1].as_u64() as f64;
                    (iter0, m.steady_cycles)
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            let (sub0, sub_steady) = results[ai * 2];
            let (unsub0, unsub_steady) = results[ai * 2 + 1];
            (
                app.name.to_owned(),
                vec![sub0, unsub0, sub_steady, unsub_steady],
            )
        })
        .collect();
    Figure {
        title: "Ablation: profiling mode (cycles; sub-by-default vs unsub-by-default)".into(),
        columns: vec![
            "iter0 sub".into(),
            "iter0 unsub".into(),
            "steady sub".into(),
            "steady unsub".into(),
        ],
        rows,
    }
}

/// Extension: geomean speedups on NVLink-class fabrics (Figure 3's
/// platforms, applied to the Figure 13 sweep).
pub fn nvlink_sweep(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let mut rows = Vec::new();
    for link in [
        LinkGen::Pcie3,
        LinkGen::NvLink1,
        LinkGen::NvLink2,
        LinkGen::NvLink3,
    ] {
        let fig = speedup_figure(
            ctx,
            "inner",
            Paradigm::FIGURE8
                .iter()
                .map(|p| (p.to_string(), *p, link))
                .collect(),
            4,
            scale,
        );
        let geo = fig.rows.last().expect("geomean row").1.clone();
        rows.push((link.to_string(), geo));
    }
    Figure {
        title: "Extension: geomean speedup on NVLink-class interconnects (4 GPUs)".into(),
        columns: Paradigm::FIGURE8.iter().map(|p| p.to_string()).collect(),
        rows,
    }
}

/// Extension: GPS strong-scaling curve across GPU counts (PCIe 6.0),
/// interpolating between the paper's 4-GPU and 16-GPU systems.
pub fn scaling_curve(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let counts = [2usize, 4, 8, 16];
    let paradigms = [Paradigm::Memcpy, Paradigm::Gps, Paradigm::InfiniteBw];
    let apps = suite::all();
    let mut jobs: Vec<(&'static str, RunSpec)> = apps
        .iter()
        .map(|app| (app.name, baseline_spec(scale)))
        .collect();
    for &gpus in &counts {
        for &p in &paradigms {
            for app in &apps {
                jobs.push((app.name, spec(p, gpus, LinkGen::Pcie6, scale)));
            }
        }
    }
    let runs = run_default_machine(ctx, &jobs);
    let (bases, grid) = runs.split_at(apps.len());
    let napps = apps.len();
    let mut rows = Vec::new();
    for (ci, &gpus) in counts.iter().enumerate() {
        let mut geo = Vec::new();
        for (pi, _) in paradigms.iter().enumerate() {
            let start = ci * paradigms.len() * napps + pi * napps;
            let speedups: Vec<f64> = (0..napps)
                .map(|ai| bases[ai].steady_cycles / grid[start + ai].steady_cycles)
                .collect();
            geo.push(geomean(&speedups));
        }
        rows.push((format!("{gpus} GPUs"), geo));
    }
    Figure {
        title: "Extension: geomean strong scaling vs GPU count (PCIe 6.0)".into(),
        columns: paradigms.iter().map(|p| p.to_string()).collect(),
        rows,
    }
}

/// Extension: switch vs ring topology at NVLink-1 bandwidth. The paper
/// evaluates switch-attached systems; a switchless ring (NVLink bridges)
/// makes transit traffic contend on neighbour links, hurting the
/// all-to-all applications most.
pub fn topology_comparison(scale: ScaleProfile) -> Figure {
    use gps_interconnect::Topology;
    let apps = suite::all();
    let topologies = [Topology::Switch, Topology::Ring];
    let bases: Vec<Measurement> = parallel_map(
        apps.iter()
            .map(|app| {
                let app = suite::by_name(app.name).expect("known app");
                move || baseline(&app, scale).expect("workload/machine mismatch")
            })
            .collect(),
    );
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            topologies.iter().map(move |&topo| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let workload = (app.build)(4, scale);
                    let mut policy = GpsPolicy::new();
                    let mut config = gps_sim::SimConfig::gv100_system(4);
                    config.page_size = workload.page_size;
                    config.topology = topo;
                    let report =
                        gps_sim::Engine::new(config, LinkGen::NvLink1, &workload, &mut policy)
                            .expect("consistent build")
                            .run();
                    crate::runner::steady_cycles_per_iteration(
                        &report,
                        workload.phases_per_iteration,
                    )
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, app)| {
            let sw = bases[ai].steady_cycles / results[ai * 2];
            let ring = bases[ai].steady_cycles / results[ai * 2 + 1];
            (app.name.to_owned(), vec![sw, ring])
        })
        .collect();
    Figure {
        title: "Extension: GPS speedup, central switch vs ring topology (4 GPUs, NVLink 1)".into(),
        columns: vec!["Switch".into(), "Ring".into()],
        rows,
    }
}

/// §8 extension: GPS slowdown under memory oversubscription. Per-GPU
/// capacity is shrunk to `demand / ratio`; the driver swaps replicas out
/// at subscription time (LRU-approx victims via the ATU access bitmaps)
/// and evicted replicas re-fault to remote reads. Columns are subscription
/// ratios (end-to-end slowdown normalised to the in-capacity 1.0× run;
/// total time, not steady state, because eviction and shootdown costs are
/// front-loaded into iteration 0 and stencil apps hide steady-state fault
/// stalls behind warp parallelism) plus the evicted-replica count at the
/// highest ratio.
pub fn oversubscription_sweep(ctx: &FigureCtx, scale: ScaleProfile) -> Figure {
    let ratios = [1.0f64, 1.5, 2.0, 3.0];
    let apps = suite::all();
    let mut jobs: Vec<(&'static str, RunSpec)> = Vec::new();
    for app in &apps {
        for &r in &ratios {
            let mut s = spec(Paradigm::GpsOversub, 4, LinkGen::Pcie3, scale);
            s.pressure = MemoryPressure::from_ratio(r);
            jobs.push((app.name, s));
        }
    }
    let runs = run_default_machine(ctx, &jobs);

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut slow_cols: Vec<Vec<f64>> = vec![Vec::new(); ratios.len()];
    let mut evicted_total = 0.0;
    for (ai, app) in apps.iter().enumerate() {
        let at = |ri: usize| &runs[ai * ratios.len() + ri];
        let base = at(0).total_cycles.max(1.0);
        let mut vals: Vec<f64> = (0..ratios.len())
            .map(|ri| {
                let s = at(ri).total_cycles / base;
                slow_cols[ri].push(s);
                s
            })
            .collect();
        let evicted = at(ratios.len() - 1).metric("evicted_replicas");
        evicted_total += evicted;
        vals.push(evicted);
        rows.push((app.name.to_owned(), vals));
    }
    let mut geo: Vec<f64> = slow_cols.iter().map(|c| geomean(c)).collect();
    geo.push(evicted_total);
    rows.push(("geomean".to_owned(), geo));

    let mut columns: Vec<String> = ratios.iter().map(|r| format!("{r:.1}x")).collect();
    columns.push(format!("evicted@{:.1}x", ratios[ratios.len() - 1]));
    Figure {
        title: "Oversubscription: GPS slowdown vs subscription ratio (4 GPUs, PCIe 3.0)".into(),
        columns,
        rows,
    }
}

/// Extension: multi-tenant serving capacity sweep. An open arrival
/// process offers a jacobi+pagerank mix at increasing rates against one
/// shared machine (two tenant slots); columns track how achieved QPS
/// saturates and tail latency inflates as the offered load crosses the
/// machine's capacity. Always runs in memory: serving runs are keyed by
/// [`gps_harness::serve_key`], not the sweep run-key space.
pub fn serve_sweep(scale: ScaleProfile) -> Figure {
    use gps_serve::{serve, ArrivalModel, ServeConfig};
    use gps_types::CYCLES_PER_SECOND;
    let rates = [500.0f64, 1000.0, 2000.0, 4000.0, 8000.0];
    let jobs: Vec<_> = rates
        .iter()
        .map(|&rate| {
            move || {
                let mean = (CYCLES_PER_SECOND as f64 / rate).round();
                let cfg = ServeConfig {
                    scale,
                    jobs: 32,
                    arrival: ArrivalModel::Open {
                        mean_interarrival: (mean as u64).max(1),
                    },
                    ..ServeConfig::default()
                };
                let r = serve(&cfg).expect("default mix serves");
                vec![
                    r.qps(),
                    r.p50() as f64 / 1e6,
                    r.p99() as f64 / 1e6,
                    r.utilization() * 100.0,
                    r.peak_queue_depth as f64,
                ]
            }
        })
        .collect();
    let results = parallel_map(jobs);
    Figure {
        title: "Serving: QPS and tail latency vs offered load (jacobi+pagerank, 2 slots)".into(),
        columns: vec![
            "achieved QPS".into(),
            "p50 ms".into(),
            "p99 ms".into(),
            "util %".into(),
            "peak queue".into(),
        ],
        rows: rates
            .iter()
            .zip(results)
            .map(|(rate, vals)| (format!("{rate:.0}/s offered"), vals))
            .collect(),
    }
}

/// §7.4: GPS performance at 4 KiB / 64 KiB / 2 MiB pages, normalised to
/// 64 KiB (the paper: 4 KiB 42 % slower, 2 MiB 15 % slower).
pub fn page_size_sensitivity(scale: ScaleProfile) -> Figure {
    let apps = suite::all();
    let sizes = [PageSize::Small4K, PageSize::Standard64K, PageSize::Huge2M];
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            sizes.iter().map(move |&page| {
                let app = suite::by_name(app.name).expect("known app");
                move || {
                    let workload = (app.build_paged)(4, scale, page);
                    let report =
                        gps_paradigms::run_paradigm(Paradigm::Gps, &workload, 4, LinkGen::Pcie3)
                            .expect("workload/machine mismatch");
                    crate::runner::steady_cycles_per_iteration(
                        &report,
                        workload.phases_per_iteration,
                    )
                }
            })
        })
        .collect();
    let results = parallel_map(jobs);
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut norm_cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (ai, app) in apps.iter().enumerate() {
        let t = &results[ai * sizes.len()..(ai + 1) * sizes.len()];
        let base = t[1];
        let vals: Vec<f64> = t.iter().map(|&x| base / x).collect();
        for (ci, v) in vals.iter().enumerate() {
            norm_cols[ci].push(*v);
        }
        rows.push((app.name.to_owned(), vals));
    }
    rows.push((
        "geomean".to_owned(),
        norm_cols.iter().map(|c| geomean(c)).collect(),
    ));
    Figure {
        title: "Page-size sensitivity: GPS performance relative to 64 KiB pages".into(),
        columns: vec!["4KiB".into(), "64KiB".into(), "2MiB".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            title: "t".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("x".into(), vec![1.0, 2.0]), ("y".into(), vec![3.0, 4.0])],
        }
    }

    #[test]
    fn value_and_column_lookup() {
        let f = sample();
        assert_eq!(f.value("x", "b"), Some(2.0));
        assert_eq!(f.value("y", "a"), Some(3.0));
        assert_eq!(f.value("z", "a"), None);
        assert_eq!(f.value("x", "c"), None);
        assert_eq!(f.column("a"), vec![1.0, 3.0]);
        assert!(f.column("missing").is_empty());
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,a,b"));
        assert_eq!(lines.next(), Some("x,1,2"));
        assert_eq!(lines.next(), Some("y,3,4"));
    }

    #[test]
    fn text_rendering_is_aligned() {
        let rendered = sample().render();
        assert!(rendered.starts_with("== t =="));
        assert_eq!(rendered.lines().count(), 4);
    }
}
