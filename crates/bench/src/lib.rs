//! Figure/table reproduction harness for the GPS evaluation (§7).
//!
//! [`runner`] re-exports the measurement machinery from `gps-harness`
//! (steady-state timing, speedup-vs-one-GPU, parallel sweeps over
//! applications and paradigms); [`figures`] renders each table and figure
//! of the paper as text, in the same rows/series the paper reports. The
//! `figures` binary dispatches on a figure id (`fig1`, `fig8`, ...,
//! `table1`, `tlb`, `pagesize`, `all`); with `--store <path>` the
//! default-machine figures resume from a `gps-harness` result store
//! instead of rerunning every simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod runner;

pub use figures::FigureCtx;
pub use runner::{measure, steady_cycles_per_iteration, Measurement, RunSpec};
