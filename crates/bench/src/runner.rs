//! Measurement machinery, re-exported from [`gps_harness`].
//!
//! The steady-state timing, speedup and sweep primitives used to live
//! here; they moved into the `gps-harness` orchestration crate so that
//! both the figure harness and the `gps-run` CLI share one implementation.
//! This module keeps the historical `gps_bench::runner::*` paths working.

pub use gps_harness::pool::parallel_map;
pub use gps_harness::runner::{
    baseline, geomean, measure, measure_with_policy, speedup, steady_cycles_per_iteration,
    steady_traffic_per_iteration, Measurement, RunSpec,
};
