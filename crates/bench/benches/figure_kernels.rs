//! Criterion benchmarks mirroring the paper's evaluation: one group per
//! table/figure, at reduced (`Tiny`) scale so a full `cargo bench` stays
//! tractable. The `figures` binary regenerates the full-scale numbers; see
//! `EXPERIMENTS.md` for the paper-vs-measured record.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gps_bench::figures;
use gps_bench::runner::{baseline, measure, RunSpec};
use gps_core::GpsConfig;
use gps_interconnect::LinkGen;
use gps_paradigms::{GpsPolicy, Paradigm};
use gps_sim::{Engine, SimConfig};
use gps_workloads::{suite, ScaleProfile};

fn spec(paradigm: Paradigm, gpus: usize, link: LinkGen) -> RunSpec {
    RunSpec {
        paradigm,
        gpus,
        link,
        scale: ScaleProfile::Tiny,
    }
}

/// Figure 1 / Figure 13 kernel: the memcpy paradigm across interconnects.
fn bench_fig1_interconnects(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_memcpy_by_link");
    group.sample_size(10);
    let app = suite::by_name("jacobi").unwrap();
    for link in [LinkGen::Pcie3, LinkGen::Pcie6, LinkGen::Infinite] {
        group.bench_with_input(BenchmarkId::from_parameter(link.label()), &link, |b, &l| {
            b.iter(|| black_box(measure(&app, spec(Paradigm::Memcpy, 4, l)).steady_cycles));
        });
    }
    group.finish();
}

/// Figure 8 kernel: every paradigm on one representative app per
/// communication pattern.
fn bench_fig8_paradigms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_paradigms");
    group.sample_size(10);
    for app_name in ["jacobi", "sssp", "ct"] {
        let app = suite::by_name(app_name).unwrap();
        for paradigm in Paradigm::FIGURE8 {
            group.bench_with_input(
                BenchmarkId::new(app_name, paradigm.label()),
                &paradigm,
                |b, &p| {
                    b.iter(|| black_box(measure(&app, spec(p, 4, LinkGen::Pcie3)).steady_cycles));
                },
            );
        }
    }
    group.finish();
}

/// Figure 9/11 kernel: GPS with and without subscription tracking.
fn bench_fig11_subscription(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_subscription");
    group.sample_size(10);
    let app = suite::by_name("diffusion").unwrap();
    for paradigm in [Paradigm::Gps, Paradigm::GpsNoSubscription] {
        group.bench_with_input(
            BenchmarkId::from_parameter(paradigm.label()),
            &paradigm,
            |b, &p| {
                b.iter(|| black_box(measure(&app, spec(p, 4, LinkGen::Pcie3)).steady_cycles));
            },
        );
    }
    group.finish();
}

/// Figure 12 kernel: 16-GPU strong scaling.
fn bench_fig12_16gpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_16gpu");
    group.sample_size(10);
    let app = suite::by_name("pagerank").unwrap();
    for paradigm in [Paradigm::Gps, Paradigm::Memcpy] {
        group.bench_with_input(
            BenchmarkId::from_parameter(paradigm.label()),
            &paradigm,
            |b, &p| {
                b.iter(|| black_box(measure(&app, spec(p, 16, LinkGen::Pcie6)).steady_cycles));
            },
        );
    }
    group.finish();
}

/// Figure 14 kernel: the GPS write-queue size sweep on CT.
fn bench_fig14_write_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_write_queue");
    group.sample_size(10);
    let app = suite::by_name("ct").unwrap();
    let wl = (app.build)(4, ScaleProfile::Tiny);
    for entries in [64usize, 512, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                b.iter(|| {
                    let mut policy =
                        GpsPolicy::with_config(GpsConfig::paper().with_rwq_entries(entries));
                    let mut config = SimConfig::gv100_system(4);
                    config.page_size = wl.page_size;
                    let report = Engine::new(config, LinkGen::Pcie3, &wl, &mut policy)
                        .unwrap()
                        .run();
                    black_box(report.metric("rwq_hit_rate"))
                });
            },
        );
    }
    group.finish();
}

/// Baseline kernel: single-GPU runs (the denominator of every figure).
fn bench_single_gpu_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_gpu_baseline");
    group.sample_size(10);
    for app_name in ["jacobi", "als"] {
        let app = suite::by_name(app_name).unwrap();
        group.bench_function(app_name, |b| {
            b.iter(|| black_box(baseline(&app, ScaleProfile::Tiny).steady_cycles));
        });
    }
    group.finish();
}

/// Table 1/2 rendering (cheap; keeps the text outputs exercised).
fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_render", |b| b.iter(|| black_box(figures::table1())));
    c.bench_function("fig3_render", |b| {
        b.iter(|| black_box(figures::fig3().render()))
    });
}

criterion_group!(
    benches,
    bench_fig1_interconnects,
    bench_fig8_paradigms,
    bench_fig11_subscription,
    bench_fig12_16gpu,
    bench_fig14_write_queue,
    bench_single_gpu_baselines,
    bench_tables
);
criterion_main!(benches);
