//! Criterion microbenchmarks of the GPS hardware structures (Table 1).
//!
//! These quantify the per-operation cost of the structures the paper sizes:
//! the remote write queue (512 entries, §5.2), the GPS-TLB (32 entries,
//! §7.4), the wide GPS page table, the access tracking bitmap and the
//! conventional memory substrate (page table, TLB, frame allocator).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gps_core::{AccessTrackingUnit, GpsTlb, RemoteWriteQueue};
use gps_mem::{FrameAllocator, GpsPageTable, PageTable, Pte, Tlb, TlbConfig};
use gps_types::{Cycle, GpuId, Latency, LineAddr, PageSize, Ppn, Scope, Vpn};

fn bench_remote_write_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_write_queue");
    for &size in &[32usize, 128, 512, 1024] {
        group.bench_with_input(
            BenchmarkId::new("insert_streaming", size),
            &size,
            |b, &size| {
                let mut q = RemoteWriteQueue::new(size, size - 1);
                let mut n = 0u64;
                b.iter(|| {
                    n += 1;
                    black_box(q.insert(LineAddr::new(n), Scope::Weak))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_coalescing", size),
            &size,
            |b, &size| {
                let mut q = RemoteWriteQueue::new(size, size - 1);
                let mut n = 0u64;
                b.iter(|| {
                    n += 1;
                    // 50% rewrites of a recent line.
                    let line = if n.is_multiple_of(2) { n } else { n - 1 };
                    black_box(q.insert(LineAddr::new(line), Scope::Weak))
                });
            },
        );
    }
    group.bench_function("flush_512", |b| {
        b.iter_batched(
            || {
                let mut q = RemoteWriteQueue::new(512, 511);
                for i in 0..511u64 {
                    q.insert(LineAddr::new(i), Scope::Weak);
                }
                q
            },
            |mut q| black_box(q.flush()),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_gps_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("gps_tlb");
    let mut table = GpsPageTable::new();
    for v in 0..1024u64 {
        for g in 0..4u16 {
            table.subscribe(Vpn::new(v), GpuId::new(g), Ppn::new(v));
        }
    }
    group.bench_function("translate_hit", |b| {
        let mut tlb = GpsTlb::paper(Latency::from_nanos(400));
        tlb.translate(Vpn::new(1), &table, Cycle::ZERO);
        b.iter(|| black_box(tlb.translate(Vpn::new(1), &table, Cycle::ZERO)));
    });
    group.bench_function("translate_miss_walk", |b| {
        let mut tlb = GpsTlb::paper(Latency::from_nanos(400));
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 33) % 1024; // always misses the 32-entry TLB
            black_box(tlb.translate(Vpn::new(v), &table, Cycle::ZERO))
        });
    });
    group.finish();
}

fn bench_page_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_tables");
    group.bench_function("conventional_map_translate", |b| {
        let mut pt = PageTable::new(GpuId::new(0), PageSize::Standard64K);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pt.map(Vpn::new(v), Pte::gps(GpuId::new(0), Ppn::new(v)));
            black_box(pt.translate(Vpn::new(v)))
        });
    });
    group.bench_function("gps_subscribe_unsubscribe", |b| {
        let mut t = GpsPageTable::new();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            let vpn = Vpn::new(v);
            t.subscribe(vpn, GpuId::new(0), Ppn::new(v));
            t.subscribe(vpn, GpuId::new(1), Ppn::new(v));
            black_box(t.unsubscribe(vpn, GpuId::new(1)).unwrap());
        });
    });
    group.bench_function("subscriber_histogram_4k_pages", |b| {
        let mut t = GpsPageTable::new();
        for v in 0..4096u64 {
            for g in 0..=(v % 4) as u16 {
                t.subscribe(Vpn::new(v), GpuId::new(g), Ppn::new(v));
            }
        }
        b.iter(|| black_box(t.subscriber_histogram(4)));
    });
    group.finish();
}

fn bench_conventional_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("conventional_tlb");
    group.bench_function("lookup_hit", |b| {
        let mut tlb: Tlb<()> = Tlb::new(TlbConfig::conventional_l2_tlb());
        for v in 0..512u64 {
            tlb.insert(Vpn::new(v), ());
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(tlb.lookup(Vpn::new(v)).is_some())
        });
    });
    group.bench_function("insert_evict", |b| {
        let mut tlb: Tlb<()> = Tlb::new(TlbConfig { sets: 4, ways: 8 });
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(tlb.insert(Vpn::new(v), ()))
        });
    });
    group.finish();
}

fn bench_tracking_and_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_and_frames");
    group.bench_function("atu_record", |b| {
        let mut atu = AccessTrackingUnit::new(4, Vpn::new(0), 1 << 16);
        atu.set_active(true);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % (1 << 16);
            atu.record(GpuId::new((v % 4) as u16), Vpn::new(v));
        });
    });
    group.bench_function("frame_alloc_free", |b| {
        let mut fa = FrameAllocator::new(GpuId::new(0), 1 << 30, PageSize::Standard64K);
        b.iter(|| {
            let p = fa.allocate().unwrap();
            fa.free(black_box(p));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_remote_write_queue,
    bench_gps_tlb,
    bench_page_tables,
    bench_conventional_tlb,
    bench_tracking_and_frames
);
criterion_main!(benches);
