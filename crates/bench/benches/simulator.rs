//! Criterion benchmarks of the simulation substrate itself: fabric
//! booking, DRAM/cache models and end-to-end engine throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gps_interconnect::{Fabric, FabricConfig, LinkGen};
use gps_paradigms::{make_policy, Paradigm};
use gps_sim::{Cache, CacheConfig, DramModel, Engine, SimConfig};
use gps_types::{Bandwidth, Cycle, GpuId, Latency, LineAddr};
use gps_workloads::{jacobi, ScaleProfile};

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    group.bench_function("transfer_line", |b| {
        let mut fabric = Fabric::new(FabricConfig::new(4, LinkGen::Pcie3));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(
                fabric
                    .transfer(GpuId::new(0), GpuId::new(1), 128, Cycle::new(t))
                    .unwrap(),
            )
        });
    });
    group.bench_function("broadcast_16gpu", |b| {
        let mut fabric = Fabric::new(FabricConfig::new(16, LinkGen::Pcie6));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(
                fabric
                    .broadcast(GpuId::new(0), GpuId::all(16), 128, Cycle::new(t))
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_memory_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_models");
    group.bench_function("dram_read", |b| {
        let mut dram = DramModel::new(Bandwidth::gb_per_sec(900.0), Latency::from_nanos(240));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(dram.read(128, Cycle::new(t)))
        });
    });
    group.bench_function("l2_access_streaming", |b| {
        let mut l2 = Cache::new(CacheConfig::new(6 * 1024 * 1024, 16));
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            black_box(l2.access_read(LineAddr::new(line), GpuId::new(0)))
        });
    });
    group.bench_function("l2_access_resident", |b| {
        let mut l2 = Cache::new(CacheConfig::new(6 * 1024 * 1024, 16));
        for line in 0..1024u64 {
            l2.access_read(LineAddr::new(line), GpuId::new(0));
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 1024;
            black_box(l2.access_read(LineAddr::new(line), GpuId::new(0)))
        });
    });
    group.finish();
}

/// End-to-end engine throughput: warp instructions simulated per second for
/// a tiny Jacobi under two representative paradigms.
fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    for paradigm in [Paradigm::InfiniteBw, Paradigm::Gps] {
        group.bench_with_input(
            BenchmarkId::new("jacobi_tiny_2gpu", paradigm.label()),
            &paradigm,
            |b, &paradigm| {
                let wl = jacobi::build(2, ScaleProfile::Tiny);
                b.iter(|| {
                    let mut policy = make_policy(paradigm);
                    let mut config = SimConfig::gv100_system(2);
                    config.page_size = wl.page_size;
                    let report = Engine::new(config, LinkGen::Pcie3, &wl, policy.as_mut())
                        .unwrap()
                        .run();
                    black_box(report.total_cycles)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fabric, bench_memory_models, bench_engine);
criterion_main!(benches);
